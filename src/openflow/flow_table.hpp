#pragma once

// The switch flow table (§3.1): maps 10-tuple matches to actions, with
// priorities, idle/hard timeouts and per-entry statistics.  This is the
// "rule cache" the paper refers to in §2 — the controller installs an
// entry to cache its allow/drop decision so later packets of the flow
// never reach the controller.
//
// Lookup strategy: entries whose match is fully exact go into a hash map
// keyed by the 10-tuple (O(1) hit path — the dominant case under ident++,
// which installs exact entries).  Wildcard entries live in a vector sorted
// by descending priority and are scanned linearly.

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "openflow/actions.hpp"
#include "openflow/match.hpp"
#include "sim/simulator.hpp"

namespace identxx::openflow {

struct FlowEntry {
  FlowMatch match;
  std::uint16_t priority = 0;
  Action action = DropAction{};
  /// 0 disables the respective timeout.
  sim::SimTime idle_timeout = 0;
  sim::SimTime hard_timeout = 0;

  // Statistics.
  sim::SimTime created_at = 0;
  sim::SimTime last_used_at = 0;
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
  std::uint64_t cookie = 0;  ///< controller-chosen opaque id
};

enum class RemovalReason { kIdleTimeout, kHardTimeout, kEvicted, kDeleted };

struct TableStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t removals = 0;
  [[nodiscard]] double hit_rate() const noexcept {
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(lookups);
  }
};

class FlowTable {
 public:
  /// `capacity` caps the number of entries (hardware TCAM analogue);
  /// inserts beyond it evict the least-recently-used entry.
  explicit FlowTable(std::size_t capacity = 65536) : capacity_(capacity) {}

  using RemovalListener =
      std::function<void(const FlowEntry&, RemovalReason)>;

  /// Called for every entry that leaves the table.
  void set_removal_listener(RemovalListener listener) {
    removal_listener_ = std::move(listener);
  }

  /// Insert or overwrite (same match + priority overwrites).
  void insert(FlowEntry entry, sim::SimTime now);

  /// Highest-priority matching entry, updating stats; nullptr on miss.
  /// Expired entries encountered along the way are removed first.
  [[nodiscard]] const FlowEntry* lookup(const net::TenTuple& tuple,
                                        sim::SimTime now,
                                        std::size_t packet_bytes);

  /// Remove entries matching predicate; returns count.
  std::size_t remove_if(const std::function<bool(const FlowEntry&)>& pred);

  /// Remove every expired entry as of `now`; returns count.
  std::size_t expire(sim::SimTime now);

  /// Remove all entries.
  void clear();

  [[nodiscard]] std::size_t size() const noexcept {
    return exact_.size() + wild_.size();
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] const TableStats& stats() const noexcept { return stats_; }

  /// Snapshot of all entries (for tests and debugging).
  [[nodiscard]] std::vector<FlowEntry> entries() const;

 private:
  [[nodiscard]] static net::TenTuple key_of(const FlowMatch& match) noexcept;
  [[nodiscard]] bool expired(const FlowEntry& entry, sim::SimTime now) const noexcept;
  void notify_removal(const FlowEntry& entry, RemovalReason reason);
  void evict_lru();

  std::size_t capacity_;
  std::unordered_map<net::TenTuple, FlowEntry> exact_;
  std::vector<FlowEntry> wild_;  // sorted by priority desc, stable
  TableStats stats_;
  RemovalListener removal_listener_;
};

}  // namespace identxx::openflow
