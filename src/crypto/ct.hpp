#pragma once

// Constant-time discipline layer (DESIGN.md §16).
//
// The ident++ threat model (§5 of the paper) includes a *local* attacker
// co-resident with the signing daemon: verify handles only public data, but
// sign touches the long-term key d and the nonce k, and a variable-time
// sign path leaks them through branches, cache lines, and division timing.
// This header provides the three mechanisms the sign path is built on:
//
//  1. `ct::secret<T>` — a type-level marker for key material.  Holding a
//     value in `secret<T>` (a) zeroizes it on destruction via
//     `secure_wipe`, and (b) makes every read site greppable/lintable:
//     the only accessor is `expose_secret()`, which `tools/ct_lint` treats
//     as a taint source.
//
//  2. Branchless primitives — `ct_select`, `ct_swap`, `ct_eq_mask`, masked
//     conditional subtraction — over a limb type `L`.  All of them compile
//     to straight-line mask arithmetic with no branches, no secret-indexed
//     loads, and no variable-time operators.
//
//  3. `TracedLimb` — a shadow-execution limb in the ctgrind style: the
//     templated sign kernel (ct_sign.hpp) instantiated with `L=TracedLimb`
//     runs the *same* code as production (`L=std::uint64_t`) but carries a
//     taint bit per limb.  Any secret-dependent branch (bool conversion /
//     comparison), variable-time operator (/ %), or secret shift count
//     throws `TraceViolation`; secret-indexed loads cannot even compile,
//     because TracedLimb has no integral conversion.  tests/ct_trace_test
//     runs sign end-to-end under poisoned inputs; the IDENTXX_CT_TRACE
//     build mode makes every production sign() self-check this way.
//
// The lint annotations (`// ct-lint: ...`) are consumed by tools/ct_lint.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <type_traits>
#include <utility>

namespace identxx::crypto::ct {

// ---- zeroization ------------------------------------------------------------

/// memset that the optimizer cannot elide: the empty asm consumes the
/// pointer after the write, so dead-store elimination must keep it.
// ct-lint: certified
inline void secure_wipe(void* p, std::size_t n) noexcept {
  std::memset(p, 0, n);
  __asm__ __volatile__("" : : "r"(p) : "memory");
}

/// Wipe a trivially-copyable object in place.
// ct-lint: certified
template <class T>
inline void secure_wipe(T& obj) noexcept {
  static_assert(std::is_trivially_copyable_v<T>,
                "secure_wipe needs a trivially copyable object");
  secure_wipe(static_cast<void*>(&obj), sizeof(T));
}

// ---- secret<T> --------------------------------------------------------------

/// Type-level marker for key material.  The wrapped value is wiped on
/// destruction; reads go through expose_secret(), which tools/ct_lint
/// treats as a taint source, so every use of the raw value is analyzed.
template <class T>
class secret {
  static_assert(std::is_trivially_copyable_v<T>,
                "secret<T> needs a trivially copyable T (it is wiped as bytes)");

 public:
  secret() = default;
  explicit secret(const T& v) noexcept : v_(v) {}
  secret(const secret& other) noexcept = default;
  secret& operator=(const secret& other) noexcept = default;
  ~secret() { secure_wipe(v_); }

  /// The only read access.  The name is the lint's taint source marker.
  // ct-lint: certified
  [[nodiscard]] const T& expose_secret() const noexcept { return v_; }

 private:
  T v_;
};

/// Marks an intentional secret -> public transition (the signature bytes,
/// a validity verdict the API surfaces anyway).  tools/ct_lint treats the
/// result as untainted; keep every call site justifiable in review.
// ct-lint: certified
template <class T>
[[nodiscard]] inline T declassify(T v) noexcept {
  return v;
}

// ---- dynamic tracing --------------------------------------------------------

/// Thrown by TracedLimb when a tainted value reaches a branch decision,
/// a variable-time operator, or a shift count.
struct TraceViolation : std::runtime_error {
  explicit TraceViolation(const char* what) : std::runtime_error(what) {}
};

[[noreturn]] inline void trace_fail(const char* op) {
  throw TraceViolation(op);
}

/// Shadow-execution limb: a uint64_t plus a taint bit.  Data flow (bit
/// ops, add/sub/mul, constant shifts) propagates taint; control flow and
/// variable-time operations on tainted values throw.  No integral
/// conversion exists, so a tainted value can never become an array index.
struct TracedLimb {
  std::uint64_t v = 0;
  bool t = false;

  constexpr TracedLimb() = default;
  constexpr TracedLimb(std::uint64_t x) noexcept : v(x) {}  // public lift

  [[nodiscard]] static constexpr TracedLimb secret_value(std::uint64_t x) noexcept {
    TracedLimb l;
    l.v = x;
    l.t = true;
    return l;
  }

  [[nodiscard]] static constexpr TracedLimb with_taint(std::uint64_t x,
                                                       bool taint) noexcept {
    TracedLimb l;
    l.v = x;
    l.t = taint;
    return l;
  }

  // Data flow: taint propagates.
  friend constexpr TracedLimb operator+(TracedLimb a, TracedLimb b) noexcept {
    return with_taint(a.v + b.v, a.t || b.t);
  }
  friend constexpr TracedLimb operator-(TracedLimb a, TracedLimb b) noexcept {
    return with_taint(a.v - b.v, a.t || b.t);
  }
  friend constexpr TracedLimb operator*(TracedLimb a, TracedLimb b) noexcept {
    return with_taint(a.v * b.v, a.t || b.t);
  }
  friend constexpr TracedLimb operator&(TracedLimb a, TracedLimb b) noexcept {
    return with_taint(a.v & b.v, a.t || b.t);
  }
  friend constexpr TracedLimb operator|(TracedLimb a, TracedLimb b) noexcept {
    return with_taint(a.v | b.v, a.t || b.t);
  }
  friend constexpr TracedLimb operator^(TracedLimb a, TracedLimb b) noexcept {
    return with_taint(a.v ^ b.v, a.t || b.t);
  }
  constexpr TracedLimb operator~() const noexcept { return with_taint(~v, t); }
  constexpr TracedLimb operator-() const noexcept {
    return with_taint(0 - v, t);
  }
  constexpr TracedLimb& operator+=(TracedLimb o) noexcept { return *this = *this + o; }
  constexpr TracedLimb& operator-=(TracedLimb o) noexcept { return *this = *this - o; }
  constexpr TracedLimb& operator|=(TracedLimb o) noexcept { return *this = *this | o; }
  constexpr TracedLimb& operator&=(TracedLimb o) noexcept { return *this = *this & o; }
  constexpr TracedLimb& operator^=(TracedLimb o) noexcept { return *this = *this ^ o; }

  // Shifts by a public (plain integer) count propagate taint; shifts by a
  // traced count are secret-dependent latency on some cores — refuse.
  friend constexpr TracedLimb operator<<(TracedLimb a, unsigned n) noexcept {
    return with_taint(a.v << n, a.t);
  }
  friend constexpr TracedLimb operator>>(TracedLimb a, unsigned n) noexcept {
    return with_taint(a.v >> n, a.t);
  }
  friend TracedLimb operator<<(TracedLimb a, TracedLimb n) {
    if (n.t) trace_fail("secret-dependent shift count");
    return with_taint(a.v << n.v, a.t);
  }
  friend TracedLimb operator>>(TracedLimb a, TracedLimb n) {
    if (n.t) trace_fail("secret-dependent shift count");
    return with_taint(a.v >> n.v, a.t);
  }

  // Variable-time operators: refuse on taint.
  friend TracedLimb operator/(TracedLimb a, TracedLimb b) {
    if (a.t || b.t) trace_fail("secret-dependent division");
    return TracedLimb(a.v / b.v);
  }
  friend TracedLimb operator%(TracedLimb a, TracedLimb b) {
    if (a.t || b.t) trace_fail("secret-dependent modulo");
    return TracedLimb(a.v % b.v);
  }

  // Control flow: converting a tainted limb into a branchable bool is
  // exactly the leak the discipline forbids.
  explicit operator bool() const {
    if (t) trace_fail("secret-dependent branch (bool conversion)");
    return v != 0;
  }
  friend bool operator==(TracedLimb a, TracedLimb b) {
    if (a.t || b.t) trace_fail("secret-dependent branch (==)");
    return a.v == b.v;
  }
  friend bool operator!=(TracedLimb a, TracedLimb b) { return !(a == b); }
  friend bool operator<(TracedLimb a, TracedLimb b) {
    if (a.t || b.t) trace_fail("secret-dependent branch (<)");
    return a.v < b.v;
  }
  friend bool operator>(TracedLimb a, TracedLimb b) { return b < a; }
  friend bool operator<=(TracedLimb a, TracedLimb b) { return !(b < a); }
  friend bool operator>=(TracedLimb a, TracedLimb b) { return !(a < b); }
};

// ---- limb traits ------------------------------------------------------------
//
// The templated kernels in ct_sign.hpp are written against these four
// operations; uint64_t gets the __int128 fast path, TracedLimb the shadow
// path.  Everything else (masks, selects, field arithmetic) is generic.

__extension__ typedef unsigned __int128 ct_u128;

/// lo = (a * b) mod 2^64, hi = (a * b) >> 64.
// ct-lint: certified
inline std::uint64_t ct_mul64(std::uint64_t a, std::uint64_t b,
                              std::uint64_t& hi) noexcept {
  const ct_u128 p = static_cast<ct_u128>(a) * b;
  hi = static_cast<std::uint64_t>(p >> 64);
  return static_cast<std::uint64_t>(p);
}

// ct-lint: certified
inline TracedLimb ct_mul64(TracedLimb a, TracedLimb b, TracedLimb& hi) noexcept {
  const ct_u128 p = static_cast<ct_u128>(a.v) * b.v;
  const bool taint = a.t || b.t;
  hi = TracedLimb::with_taint(static_cast<std::uint64_t>(p >> 64), taint);
  return TracedLimb::with_taint(static_cast<std::uint64_t>(p), taint);
}

/// sum = a + b + carry_in; carry (0/1) updated in place.
// ct-lint: certified
inline std::uint64_t ct_adc(std::uint64_t a, std::uint64_t b,
                            std::uint64_t& carry) noexcept {
  const ct_u128 s = static_cast<ct_u128>(a) + b + carry;
  carry = static_cast<std::uint64_t>(s >> 64);
  return static_cast<std::uint64_t>(s);
}

// ct-lint: certified
inline TracedLimb ct_adc(TracedLimb a, TracedLimb b, TracedLimb& carry) noexcept {
  const ct_u128 s = static_cast<ct_u128>(a.v) + b.v + carry.v;
  const bool taint = a.t || b.t || carry.t;
  carry = TracedLimb::with_taint(static_cast<std::uint64_t>(s >> 64), taint);
  return TracedLimb::with_taint(static_cast<std::uint64_t>(s), taint);
}

/// diff = a - b - borrow_in; borrow (0/1) updated in place.
// ct-lint: certified
inline std::uint64_t ct_sbb(std::uint64_t a, std::uint64_t b,
                            std::uint64_t& borrow) noexcept {
  const ct_u128 d = static_cast<ct_u128>(a) - b - borrow;
  borrow = static_cast<std::uint64_t>(d >> 64) & 1;
  return static_cast<std::uint64_t>(d);
}

// ct-lint: certified
inline TracedLimb ct_sbb(TracedLimb a, TracedLimb b, TracedLimb& borrow) noexcept {
  const ct_u128 d = static_cast<ct_u128>(a.v) - b.v - borrow.v;
  const bool taint = a.t || b.t || borrow.t;
  borrow = TracedLimb::with_taint(static_cast<std::uint64_t>(d >> 64) & 1, taint);
  return TracedLimb::with_taint(static_cast<std::uint64_t>(d), taint);
}

/// The raw 64-bit value, shedding any taint.  Only for declassified data
/// (the lint's `declassify` rule applies at the call site above this).
// ct-lint: certified
[[nodiscard]] inline std::uint64_t ct_limb_value(std::uint64_t x) noexcept {
  return x;
}
// ct-lint: certified
[[nodiscard]] inline std::uint64_t ct_limb_value(TracedLimb x) noexcept {
  return x.v;
}

// ---- branchless primitives --------------------------------------------------

/// All-ones mask from a 0/1 bit.
// ct-lint: certified secret(bit)
template <class L>
[[nodiscard]] constexpr L ct_mask_from_bit(L bit) noexcept {
  return L(0) - bit;
}

/// mask ? a : b, with mask all-ones or all-zeros.
// ct-lint: certified secret(mask, a, b)
template <class L>
[[nodiscard]] constexpr L ct_select(L mask, L a, L b) noexcept {
  return b ^ (mask & (a ^ b));
}

/// 1 when x is nonzero, else 0 — branchless: x | -x has its top bit set
/// exactly when x != 0.
// ct-lint: certified secret(x)
template <class L>
[[nodiscard]] constexpr L ct_nonzero_bit(L x) noexcept {
  return (x | (L(0) - x)) >> 63;
}

/// All-ones when a == b, else all-zeros.
// ct-lint: certified secret(a, b)
template <class L>
[[nodiscard]] constexpr L ct_eq_mask(L a, L b) noexcept {
  return ~ct_mask_from_bit(ct_nonzero_bit(a ^ b));
}

/// Branchless equality of two public-width byte strings with secret
/// content (tag comparisons): returns 1 on equal, 0 otherwise, touching
/// every byte regardless.
// ct-lint: certified secret(a, b)
[[nodiscard]] inline bool ct_eq(const std::uint8_t* a, const std::uint8_t* b,
                                std::size_t n) noexcept {
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc |= static_cast<std::uint8_t>(a[i] ^ b[i]);
  return acc == 0;
}

/// Conditionally swap two limbs under a mask (all-ones swaps).
// ct-lint: certified secret(mask, a, b)
template <class L>
constexpr void ct_swap(L mask, L& a, L& b) noexcept {
  const L diff = mask & (a ^ b);
  a = a ^ diff;
  b = b ^ diff;
}

}  // namespace identxx::crypto::ct
