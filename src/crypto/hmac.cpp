#include "crypto/hmac.hpp"

#include <array>
#include <cstring>

#include "crypto/ct.hpp"

namespace identxx::crypto {

// Single-shot HMAC-SHA256: the caller hands the key in and every
// key-derived intermediate (padded block, both pads, the inner digest) is
// wiped before returning, so secret-keyed hashing leaves no residue in
// any long-lived object (DESIGN.md §16).  Control flow depends only on
// lengths, which are public in every use here (32-byte keys, message
// digests).
// ct-lint: secret(key)
Digest hmac_sha256(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> message) noexcept {
  std::array<std::uint8_t, 64> block{};
  if (key.size() > block.size()) {  // ct-lint: allow(branch) length is public
    Digest hashed = Sha256::hash(key);
    std::memcpy(block.data(), hashed.data(), hashed.size());
    ct::secure_wipe(hashed);
  } else {
    std::memcpy(block.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, 64> inner_pad;
  std::array<std::uint8_t, 64> outer_pad;
  for (std::size_t i = 0; i < 64; ++i) {
    inner_pad[i] = static_cast<std::uint8_t>(block[i] ^ 0x36);
    outer_pad[i] = static_cast<std::uint8_t>(block[i] ^ 0x5c);
  }
  ct::secure_wipe(block);

  Sha256 inner;
  inner.update(std::span(inner_pad.data(), inner_pad.size()));
  inner.update(message);
  Digest inner_digest = inner.finish();
  ct::secure_wipe(inner_pad);

  Sha256 outer;
  outer.update(std::span(outer_pad.data(), outer_pad.size()));
  outer.update(std::span(inner_digest.data(), inner_digest.size()));
  ct::secure_wipe(outer_pad);
  const Digest out = outer.finish();
  ct::secure_wipe(inner_digest);
  return out;
}

Digest hmac_sha256(std::string_view key, std::string_view message) noexcept {
  return hmac_sha256(
      std::span(reinterpret_cast<const std::uint8_t*>(key.data()), key.size()),
      std::span(reinterpret_cast<const std::uint8_t*>(message.data()),
                message.size()));
}

}  // namespace identxx::crypto
