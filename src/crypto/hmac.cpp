#include "crypto/hmac.hpp"

#include <array>
#include <cstring>

namespace identxx::crypto {

Digest hmac_sha256(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> message) noexcept {
  std::array<std::uint8_t, 64> block{};
  if (key.size() > block.size()) {
    const Digest hashed = Sha256::hash(key);
    std::memcpy(block.data(), hashed.data(), hashed.size());
  } else {
    std::memcpy(block.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, 64> inner_pad;
  std::array<std::uint8_t, 64> outer_pad;
  for (std::size_t i = 0; i < 64; ++i) {
    inner_pad[i] = static_cast<std::uint8_t>(block[i] ^ 0x36);
    outer_pad[i] = static_cast<std::uint8_t>(block[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(std::span(inner_pad.data(), inner_pad.size()));
  inner.update(message);
  const Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(std::span(outer_pad.data(), outer_pad.size()));
  outer.update(std::span(inner_digest.data(), inner_digest.size()));
  return outer.finish();
}

Digest hmac_sha256(std::string_view key, std::string_view message) noexcept {
  return hmac_sha256(
      std::span(reinterpret_cast<const std::uint8_t*>(key.data()), key.size()),
      std::span(reinterpret_cast<const std::uint8_t*>(message.data()),
                message.size()));
}

}  // namespace identxx::crypto
