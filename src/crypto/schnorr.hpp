#pragma once

// Schnorr signatures over secp256k1.
//
// This is the signing machinery behind the paper's authenticated delegation:
// a user or third-party security company ("Secur" in Fig. 6/7) signs an
// application's name, executable hash and `requirements` rules; the ident++
// controller verifies the signature with the `verify` PF+=2 function before
// honoring the delegated rules.
//
// Scheme (classic Schnorr, deterministic nonce):
//   keygen:  d <- H(seed) mod n (nonzero), P = d*G
//   sign:    k = H(d || m) mod n, R = k*G,
//            e = H(Rx || Ry || Px || Py || m) mod n,
//            s = k + e*d mod n.          Signature = (Rx, Ry, s).
//   verify:  s*G == R + e*P.
//
// Signatures serialize to 96 bytes (192 hex chars); public keys to 64 bytes.

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "crypto/ct.hpp"
#include "crypto/ec.hpp"
#include "crypto/sha256.hpp"

namespace identxx::crypto {

struct PublicKey {
  AffinePoint point;

  [[nodiscard]] std::string to_hex() const;
  [[nodiscard]] static std::optional<PublicKey> from_hex(std::string_view hex);
  [[nodiscard]] bool operator==(const PublicKey&) const noexcept = default;
};

/// A public key with its fixed-base comb table built eagerly.  Verifying
/// against it does no doubling chain at all (DESIGN.md §9) — build one per
/// long-lived key (daemon/vendor keys) at registration time.  Copies share
/// the table.
class PrecomputedPublicKey {
 public:
  explicit PrecomputedPublicKey(const PublicKey& key)
      : key_(key), table_(std::make_shared<FixedBaseTable>(key.point)) {}

  [[nodiscard]] const PublicKey& key() const noexcept { return key_; }
  [[nodiscard]] const FixedBaseTable& table() const noexcept { return *table_; }

 private:
  PublicKey key_;
  std::shared_ptr<const FixedBaseTable> table_;
};

struct Signature {
  AffinePoint r;
  U256 s;

  [[nodiscard]] std::string to_hex() const;
  [[nodiscard]] static std::optional<Signature> from_hex(std::string_view hex);
  [[nodiscard]] bool operator==(const Signature&) const noexcept = default;
};

class PrivateKey {
 public:
  /// Derive a key pair deterministically from an arbitrary seed string.
  /// Distinct seeds give distinct keys with overwhelming probability.
  [[nodiscard]] static PrivateKey from_seed(std::string_view seed);

  /// Construct from a raw scalar; throws CryptoError when out of [1, n-1].
  [[nodiscard]] static PrivateKey from_scalar(const U256& d);

  [[nodiscard]] const PublicKey& public_key() const noexcept { return public_; }

  /// Sign an arbitrary message (deterministic: same key+message => same
  /// sig).  Runs the certified constant-time kernel (ct_sign.hpp): the
  /// nonce chain is a fixed-window comb with complete additions and masked
  /// reductions — no branch, memory index, or variable-time operator
  /// depends on d or k (DESIGN.md §16).
  [[nodiscard]] Signature sign(std::string_view message) const;
  [[nodiscard]] Signature sign(std::span<const std::uint8_t> message) const;

  [[nodiscard]] const U256& scalar() const noexcept {
    return d_.expose_secret();
  }

 private:
  PrivateKey(const U256& d, PublicKey pub) : d_(d), public_(pub) {}
  ct::secret<U256> d_;  ///< wiped on destruction (ct.hpp)
  PublicKey public_;
};

/// Verify `sig` over `message` with `key`.  Returns false (never throws) on
/// any mismatch, off-curve point or out-of-range scalar.
///
/// The check s*G == R + e*P runs as one fused pass computing
/// s*G + (n-e)*P and comparing against R projectively (no field
/// inversion).  Keys seen repeatedly are promoted into a small process-wide
/// table cache, so steady-state verification per long-lived key costs only
/// comb additions; use PrecomputedPublicKey to build the table explicitly
/// (and to bypass the shared cache).
[[nodiscard]] bool verify(const PublicKey& key, std::string_view message,
                          const Signature& sig) noexcept;
[[nodiscard]] bool verify(const PublicKey& key,
                          std::span<const std::uint8_t> message,
                          const Signature& sig) noexcept;
[[nodiscard]] bool verify(const PrecomputedPublicKey& key,
                          std::string_view message,
                          const Signature& sig) noexcept;
[[nodiscard]] bool verify(const PrecomputedPublicKey& key,
                          std::span<const std::uint8_t> message,
                          const Signature& sig) noexcept;

/// Tier-aware verify: same check as above, but the caller supplies whatever
/// acceleration structure it holds for `key` (both may be null).  Preference
/// order: hot comb table, warm GLV odd-multiples table, per-call GLV.
/// Bypasses the process-wide table cache — used by SchnorrVerifier, whose
/// KeyTierStore owns the tables.
[[nodiscard]] bool verify_tiered(const PublicKey& key,
                                 const FixedBaseTable* hot,
                                 const GlvTable* warm,
                                 std::span<const std::uint8_t> message,
                                 const Signature& sig) noexcept;

/// Same, with the challenge already computed: callers that need e anyway
/// (the memo keys on it; batch verification folds z_i * e_i) pass it in so
/// the message is hashed exactly once per verification.
[[nodiscard]] bool verify_tiered(const PublicKey& key,
                                 const FixedBaseTable* hot,
                                 const GlvTable* warm, const U256& e,
                                 const Signature& sig) noexcept;

/// The Schnorr challenge e = H(Rx || Ry || Px || Py || m) mod n.  Exposed
/// for batch verification, which folds z_i * e_i into one multi-scalar
/// multiplication instead of calling verify() per signature.
[[nodiscard]] U256 schnorr_challenge(const AffinePoint& r,
                                     const AffinePoint& p,
                                     std::span<const std::uint8_t> message) noexcept;

/// Structural signature checks shared by single and batch verification:
/// R on curve and not the identity, s in [1, n-1].
[[nodiscard]] bool signature_well_formed(const Signature& sig) noexcept;

/// Hash-to-scalar helper: SHA-256(data) reduced mod n.
[[nodiscard]] U256 hash_to_scalar(std::span<const std::uint8_t> data) noexcept;

}  // namespace identxx::crypto
