#pragma once

// Constant-time Schnorr signing kernel (DESIGN.md §16).
//
// Everything here is templated on a limb type `L`: production instantiates
// `L = std::uint64_t`, the dynamic checker instantiates `L = ct::TracedLimb`
// (ct.hpp) and runs the *identical* code under taint tracking.  The kernel
// follows three rules, which tools/ct_lint statically enforces and the
// TracedLimb instantiation dynamically re-checks:
//
//   1. no branch or loop bound depends on secret data — all control flow
//      is over public constants (limb counts, window counts, the public
//      exponent p-2);
//   2. no memory access is indexed by secret data — table lookups scan
//      every entry and combine with masks (ct_select);
//   3. no variable-time operator touches secret data — reductions use
//      masked conditional subtraction, never `/` or `%`.
//
// The nonce chain deliberately avoids the wNAF machinery of ec.cpp (digit
// recoding branches on scalar bits) and runs a fixed-window comb over the
// public generator table with *complete* projective addition
// (Renes–Costello–Batina 2016, Algorithm 7 for a = 0): one formula for
// add, double and identity, so zero digits and coincidences need no
// branches at all.  Verification keeps every variable-time fast path —
// its inputs are public (DESIGN.md §16 explains why).
//
// Cost: 64 complete additions (~14 fp mul each) + one Fermat inversion
// (~334 fp mul) — bench_crypto's BM_SchnorrSignCt tracks the ratio to the
// variable-time reference (acceptance bar: <= 3x).

#include <array>
#include <cstdint>
#include <span>

#include "crypto/ct.hpp"
#include "crypto/ec.hpp"
#include "crypto/hmac.hpp"
#include "crypto/schnorr.hpp"
#include "crypto/sha256.hpp"

namespace identxx::crypto::ct {

template <class L>
using u256t = std::array<L, 4>;

// ---- lifts ------------------------------------------------------------------

/// Lift one public 64-bit word into L (untainted).
// ct-lint: certified
template <class L>
[[nodiscard]] inline L lift_limb(std::uint64_t x) noexcept {
  return L(x);
}

/// Lift one secret 64-bit word into L (tainted under TracedLimb).
// ct-lint: certified
template <class L>
[[nodiscard]] inline L lift_limb_secret(std::uint64_t x) noexcept {
  if constexpr (std::is_same_v<L, TracedLimb>) {
    return TracedLimb::secret_value(x);
  } else {
    return L(x);
  }
}

// ct-lint: certified
template <class L>
[[nodiscard]] inline u256t<L> lift_public(const U256& x) noexcept {
  return {lift_limb<L>(x.w[0]), lift_limb<L>(x.w[1]), lift_limb<L>(x.w[2]),
          lift_limb<L>(x.w[3])};
}

// ct-lint: certified
template <class L>
[[nodiscard]] inline u256t<L> lift_secret(const U256& x) noexcept {
  return {lift_limb_secret<L>(x.w[0]), lift_limb_secret<L>(x.w[1]),
          lift_limb_secret<L>(x.w[2]), lift_limb_secret<L>(x.w[3])};
}

/// Secret -> public transition for a full word vector: the intentional
/// declassification point (signature components, published R).
// ct-lint: certified
template <class L>
[[nodiscard]] inline U256 declassify_u256(const u256t<L>& x) noexcept {
  return U256{ct_limb_value(x[0]), ct_limb_value(x[1]), ct_limb_value(x[2]),
              ct_limb_value(x[3])};
}

// ct-lint: certified
template <class L>
[[nodiscard]] inline u256t<L> zero4() noexcept {
  return {L(0), L(0), L(0), L(0)};
}

// ---- 256-bit vector primitives ---------------------------------------------

/// out = a + b; returns the carry limb (0/1).
// ct-lint: certified secret(a, b)
template <class L>
inline L ct_add4(const u256t<L>& a, const u256t<L>& b, u256t<L>& out) noexcept {
  L c(0);
  for (std::size_t i = 0; i < 4; ++i) out[i] = ct_adc(a[i], b[i], c);
  return c;
}

/// out = a - b; returns the borrow limb (0/1).
// ct-lint: certified secret(a, b)
template <class L>
inline L ct_sub4(const u256t<L>& a, const u256t<L>& b, u256t<L>& out) noexcept {
  L br(0);
  for (std::size_t i = 0; i < 4; ++i) out[i] = ct_sbb(a[i], b[i], br);
  return br;
}

/// mask ? a : b per limb.
// ct-lint: certified secret(mask, a, b)
template <class L>
[[nodiscard]] inline u256t<L> ct_select4(L mask, const u256t<L>& a,
                                         const u256t<L>& b) noexcept {
  u256t<L> out;
  for (std::size_t i = 0; i < 4; ++i) out[i] = ct_select(mask, a[i], b[i]);
  return out;
}

/// 1 when x != 0, else 0, as a limb.
// ct-lint: certified secret(x)
template <class L>
[[nodiscard]] inline L ct_nonzero4(const u256t<L>& x) noexcept {
  return ct_nonzero_bit(x[0] | x[1] | x[2] | x[3]);
}

/// Full 256x256 -> 512 product, operand-scanning schoolbook.
// ct-lint: certified secret(a, b)
template <class L>
[[nodiscard]] inline std::array<L, 8> ct_mul_wide4(const u256t<L>& a,
                                                   const u256t<L>& b) noexcept {
  std::array<L, 8> r{};
  for (std::size_t i = 0; i < 4; ++i) {
    L carry(0);
    for (std::size_t j = 0; j < 4; ++j) {
      L hi(0);
      const L lo = ct_mul64(a[i], b[j], hi);
      L c1(0);
      r[i + j] = ct_adc(r[i + j], lo, c1);
      L c2(0);
      r[i + j] = ct_adc(r[i + j], carry, c2);
      carry = hi + c1 + c2;  // never wraps: the true column sum fits 128 bits
    }
    r[i + 4] = carry;
  }
  return r;
}

// ---- field arithmetic mod p -------------------------------------------------
//
// Masked analogues of the ec.cpp fold reduction: same math, with every
// data-dependent `if` replaced by a computed mask and a select.

inline constexpr std::uint64_t kCtFoldP = 0x1000003d1ULL;  // 2^256 - p

// ct-lint: certified secret(a, b)
template <class L>
[[nodiscard]] inline u256t<L> fp_add_ct(const u256t<L>& a,
                                        const u256t<L>& b) noexcept {
  const u256t<L> p = lift_public<L>(Secp256k1::p());
  u256t<L> sum;
  const L c = ct_add4(a, b, sum);
  u256t<L> sub;
  const L br = ct_sub4(sum, p, sub);
  // a + b >= p  iff the add carried out or the trial subtraction did not
  // borrow; in both cases `sub` holds the correct reduced value.
  const L ge = ct_mask_from_bit(c | (br ^ L(1)));
  return ct_select4(ge, sub, sum);
}

// ct-lint: certified secret(a, b)
template <class L>
[[nodiscard]] inline u256t<L> fp_sub_ct(const u256t<L>& a,
                                        const u256t<L>& b) noexcept {
  const u256t<L> p = lift_public<L>(Secp256k1::p());
  u256t<L> diff;
  const L br = ct_sub4(a, b, diff);
  u256t<L> fixed;
  ct_add4(diff, p, fixed);
  return ct_select4(ct_mask_from_bit(br), fixed, diff);
}

/// Fold an 8-limb product into [0, p): the fp_from_wide of ec.cpp with the
/// wrap and the final subtraction both masked instead of branched.
// ct-lint: certified secret(r)
template <class L>
[[nodiscard]] inline u256t<L> fp_reduce_wide_ct(const std::array<L, 8>& r) noexcept {
  const L kc(kCtFoldP);
  // Pass 1: t = L + H*kC (five limbs; high words of the per-limb products
  // are < 2^34, so the running high-side accumulator cannot overflow).
  u256t<L> t;
  L t4(0);
  {
    L carry(0);
    L hiprev(0);
    for (std::size_t i = 0; i < 4; ++i) {
      L hi(0);
      const L lo = ct_mul64(r[4 + i], kc, hi);
      L s1(0);
      L u = ct_adc(r[i], lo, s1);
      L s2(0);
      u = ct_adc(u, hiprev + carry, s2);
      t[i] = u;
      carry = s1 + s2;
      hiprev = hi;
    }
    t4 = hiprev + carry;
  }
  // Pass 2: out = t[0..3] + t4*kC, carry out cfin.
  u256t<L> out;
  L cfin(0);
  {
    L hi(0);
    const L lo = ct_mul64(t4, kc, hi);
    L c(0);
    out[0] = ct_adc(t[0], lo, c);
    out[1] = ct_adc(t[1], hi, c);
    out[2] = ct_adc(t[2], L(0), c);
    out[3] = ct_adc(t[3], L(0), c);
    cfin = c;
  }
  // Wrapped past 2^256 (cfin): the wrapped value is tiny; adding kC once
  // finishes (same argument as ec.cpp).  Otherwise subtract p at most once.
  u256t<L> wrapped;
  {
    const u256t<L> kc4{kc, L(0), L(0), L(0)};
    ct_add4(out, kc4, wrapped);
  }
  const u256t<L> p = lift_public<L>(Secp256k1::p());
  u256t<L> sub;
  const L br = ct_sub4(out, p, sub);
  const u256t<L> reduced = ct_select4(ct_mask_from_bit(br ^ L(1)), sub, out);
  return ct_select4(ct_mask_from_bit(cfin), wrapped, reduced);
}

// Fused overloads for the production limb.  Same data flow as the
// generic templates above — straight-line multiplies and adds, carries
// chained through a 128-bit accumulator, masks for the conditional
// steps — but without the per-limb carry bookkeeping the tracer's
// TracedLimb instantiation executes.  Overload resolution prefers these
// exact matches when L = uint64_t, so production signing gets vartime
// fp_mul's instruction count while staying branch-free.
// ct-lint: certified secret(a, b)
[[nodiscard]] inline std::array<std::uint64_t, 8> ct_mul_wide4(
    const u256t<std::uint64_t>& a, const u256t<std::uint64_t>& b) noexcept {
  std::array<std::uint64_t, 8> r{};
  for (std::size_t i = 0; i < 4; ++i) {
    ct_u128 carry = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      // product + limb + carry < 2^128: no overflow.
      const ct_u128 uv =
          static_cast<ct_u128>(a[i]) * b[j] + r[i + j] + carry;
      r[i + j] = static_cast<std::uint64_t>(uv);
      carry = uv >> 64;
    }
    r[i + 4] = static_cast<std::uint64_t>(carry);
  }
  return r;
}

// ct-lint: certified secret(r)
[[nodiscard]] inline u256t<std::uint64_t> fp_reduce_wide_ct(
    const std::array<std::uint64_t, 8>& r) noexcept {
  constexpr std::uint64_t kc = kCtFoldP;
  // Pass 1: t = L + H*kC (five limbs).
  ct_u128 c = static_cast<ct_u128>(r[4]) * kc + r[0];
  const std::uint64_t t0 = static_cast<std::uint64_t>(c);
  c >>= 64;
  c += static_cast<ct_u128>(r[5]) * kc + r[1];
  const std::uint64_t t1 = static_cast<std::uint64_t>(c);
  c >>= 64;
  c += static_cast<ct_u128>(r[6]) * kc + r[2];
  const std::uint64_t t2 = static_cast<std::uint64_t>(c);
  c >>= 64;
  c += static_cast<ct_u128>(r[7]) * kc + r[3];
  const std::uint64_t t3 = static_cast<std::uint64_t>(c);
  const std::uint64_t t4 = static_cast<std::uint64_t>(c >> 64);
  // Pass 2: out = t[0..3] + t4*kC.
  u256t<std::uint64_t> out;
  c = static_cast<ct_u128>(t4) * kc + t0;
  out[0] = static_cast<std::uint64_t>(c);
  c >>= 64;
  c += t1;
  out[1] = static_cast<std::uint64_t>(c);
  c >>= 64;
  c += t2;
  out[2] = static_cast<std::uint64_t>(c);
  c >>= 64;
  c += t3;
  out[3] = static_cast<std::uint64_t>(c);
  const std::uint64_t cfin = static_cast<std::uint64_t>(c >> 64);
  // Masked wrap and masked conditional subtraction (ec.cpp branches here).
  u256t<std::uint64_t> wrapped;
  {
    const u256t<std::uint64_t> kc4{kc, 0, 0, 0};
    ct_add4(out, kc4, wrapped);
  }
  const u256t<std::uint64_t> p = lift_public<std::uint64_t>(Secp256k1::p());
  u256t<std::uint64_t> sub;
  const std::uint64_t br = ct_sub4(out, p, sub);
  const u256t<std::uint64_t> reduced =
      ct_select4(ct_mask_from_bit(br ^ std::uint64_t{1}), sub, out);
  return ct_select4(ct_mask_from_bit(cfin), wrapped, reduced);
}

// ct-lint: certified secret(a, b)
template <class L>
[[nodiscard]] inline u256t<L> fp_mul_ct(const u256t<L>& a,
                                        const u256t<L>& b) noexcept {
  return fp_reduce_wide_ct(ct_mul_wide4(a, b));
}

/// a^(p-2) by 4-bit fixed windows.  The exponent is a public constant, so
/// indexing the small power table by its windows is public-data flow; the
/// *base* (secret) only ever feeds fp_mul_ct.
// ct-lint: certified secret(a)
template <class L>
[[nodiscard]] inline u256t<L> fp_inv_ct(const u256t<L>& a) noexcept {
  static const U256 kExp = U256::sub(Secp256k1::p(), U256{2}).first;
  std::array<u256t<L>, 16> tab;
  tab[0] = lift_public<L>(U256{1});
  tab[1] = a;
  for (std::size_t j = 2; j < 16; ++j) tab[j] = fp_mul_ct(tab[j - 1], a);
  u256t<L> r = tab[0];
  for (int i = 63; i >= 0; --i) {
    for (int s = 0; s < 4; ++s) r = fp_mul_ct(r, r);
    const unsigned w = static_cast<unsigned>(
                           kExp.w[static_cast<std::size_t>(i) / 16] >>
                           ((static_cast<std::size_t>(i) % 16) * 4)) &
                       0xfu;
    r = fp_mul_ct(r, tab[w]);  // w is public (exponent window)
  }
  return r;
}

// ---- scalar arithmetic mod n ------------------------------------------------

/// Reduce a value < 2^256 into [0, n): one masked conditional subtraction
/// (2^256 < 2n) — the constant-time analogue of sn_reduce(U256).
// ct-lint: certified secret(x)
template <class L>
[[nodiscard]] inline u256t<L> sn_reduce_ct(const u256t<L>& x) noexcept {
  const u256t<L> n = lift_public<L>(Secp256k1::n());
  u256t<L> sub;
  const L br = ct_sub4(x, n, sub);
  return ct_select4(ct_mask_from_bit(br ^ L(1)), sub, x);
}

// ct-lint: certified secret(a, b)
template <class L>
[[nodiscard]] inline u256t<L> sn_add_ct(const u256t<L>& a,
                                        const u256t<L>& b) noexcept {
  const u256t<L> n = lift_public<L>(Secp256k1::n());
  u256t<L> sum;
  const L c = ct_add4(a, b, sum);
  u256t<L> sub;
  const L br = ct_sub4(sum, n, sub);
  const L ge = ct_mask_from_bit(c | (br ^ L(1)));
  return ct_select4(ge, sub, sum);
}

/// One fold step L + H * (2^256 - n) over an 8-limb accumulator.  The fold
/// constant is 129 bits (three limbs); four fixed folds bring any 512-bit
/// value under 2^256 (the while-loop of ec.cpp's sn_reduce, unrolled to
/// its worst case so iteration count is data-independent).
// ct-lint: certified secret(x)
template <class L>
[[nodiscard]] inline std::array<L, 8> sn_fold_ct(const std::array<L, 8>& x) noexcept {
  // kNC = 2^256 - n, little-endian limbs.
  static const U256 kNc = U256::sub(U256{}, Secp256k1::n()).first;
  const std::array<L, 3> nc{L(kNc.w[0]), L(kNc.w[1]), L(kNc.w[2])};
  // prod = H * kNC (4x3 schoolbook, up to 7 limbs).
  std::array<L, 8> prod{};
  for (std::size_t i = 0; i < 4; ++i) {
    L carry(0);
    for (std::size_t j = 0; j < 3; ++j) {
      L hi(0);
      const L lo = ct_mul64(x[4 + i], nc[j], hi);
      L c1(0);
      prod[i + j] = ct_adc(prod[i + j], lo, c1);
      L c2(0);
      prod[i + j] = ct_adc(prod[i + j], carry, c2);
      carry = hi + c1 + c2;
    }
    prod[i + 3] = prod[i + 3] + carry;  // fresh slot: no carry out of it
  }
  // out = L + prod.
  std::array<L, 8> out{};
  L c(0);
  for (std::size_t i = 0; i < 4; ++i) out[i] = ct_adc(x[i], prod[i], c);
  for (std::size_t i = 4; i < 8; ++i) out[i] = ct_adc(L(0), prod[i], c);
  return out;
}

/// Reduce a full 512-bit value mod n with a fixed number of folds and
/// masked conditional subtractions.
// ct-lint: certified secret(x)
template <class L>
[[nodiscard]] inline u256t<L> sn_reduce_wide_ct(const std::array<L, 8>& x) noexcept {
  std::array<L, 8> t = x;
  for (int fold = 0; fold < 4; ++fold) t = sn_fold_ct(t);
  u256t<L> r{t[0], t[1], t[2], t[3]};
  r = sn_reduce_ct(r);
  return sn_reduce_ct(r);
}

// ct-lint: certified secret(a, b)
template <class L>
[[nodiscard]] inline u256t<L> sn_mul_ct(const u256t<L>& a,
                                        const u256t<L>& b) noexcept {
  return sn_reduce_wide_ct(ct_mul_wide4(a, b));
}

// ---- points -----------------------------------------------------------------

/// Homogeneous projective point (X/Z, Y/Z); (0 : 1 : 0) is the identity.
/// Chosen over Jacobian because complete addition formulas exist here.
template <class L>
struct CtPoint {
  u256t<L> x;
  u256t<L> y;
  u256t<L> z;

  // ct-lint: certified
  [[nodiscard]] static CtPoint identity() noexcept {
    return CtPoint{zero4<L>(), lift_public<L>(U256{1}), zero4<L>()};
  }
};

/// Complete projective addition for y^2 = x^3 + b with a = 0
/// (Renes–Costello–Batina 2016, Algorithm 7; b3 = 3b = 21).  One formula
/// covers P+Q, P+P, P+(-P), and identity operands — no exceptional-case
/// branches, which is what makes the secret-digit comb walk sound.
// ct-lint: certified secret(p, q)
template <class L>
[[nodiscard]] inline CtPoint<L> ct_add_complete(const CtPoint<L>& p,
                                                const CtPoint<L>& q) noexcept {
  const u256t<L> b3 = lift_public<L>(U256{21});
  u256t<L> t0 = fp_mul_ct(p.x, q.x);
  u256t<L> t1 = fp_mul_ct(p.y, q.y);
  u256t<L> t2 = fp_mul_ct(p.z, q.z);
  u256t<L> t3 = fp_add_ct(p.x, p.y);
  u256t<L> t4 = fp_add_ct(q.x, q.y);
  t3 = fp_mul_ct(t3, t4);
  t4 = fp_add_ct(t0, t1);
  t3 = fp_sub_ct(t3, t4);  // X1Y2 + X2Y1
  t4 = fp_add_ct(p.y, p.z);
  u256t<L> x3 = fp_add_ct(q.y, q.z);
  t4 = fp_mul_ct(t4, x3);
  x3 = fp_add_ct(t1, t2);
  t4 = fp_sub_ct(t4, x3);  // Y1Z2 + Y2Z1
  x3 = fp_add_ct(p.x, p.z);
  u256t<L> y3 = fp_add_ct(q.x, q.z);
  x3 = fp_mul_ct(x3, y3);
  y3 = fp_add_ct(t0, t2);
  y3 = fp_sub_ct(x3, y3);  // X1Z2 + X2Z1
  x3 = fp_add_ct(t0, t0);
  t0 = fp_add_ct(x3, t0);  // 3 X1X2
  t2 = fp_mul_ct(b3, t2);  // b3 Z1Z2
  u256t<L> z3 = fp_add_ct(t1, t2);
  t1 = fp_sub_ct(t1, t2);
  y3 = fp_mul_ct(b3, y3);
  x3 = fp_mul_ct(t4, y3);
  t2 = fp_mul_ct(t3, t1);
  x3 = fp_sub_ct(t2, x3);
  y3 = fp_mul_ct(y3, t0);
  t1 = fp_mul_ct(t1, z3);
  y3 = fp_add_ct(t1, y3);
  t0 = fp_mul_ct(t0, t3);
  z3 = fp_mul_ct(z3, t4);
  z3 = fp_add_ct(z3, t0);
  return CtPoint<L>{x3, y3, z3};
}

/// k * G by a fixed-window comb over the shared public generator table:
/// 64 windows of 4 bits, each selected by scanning ALL 15 entries with
/// ct_eq_mask (no secret-indexed load), a zero digit selecting the
/// identity, every window folded in with complete addition.  Exactly 64
/// point additions and zero doublings for every scalar — the shape of the
/// computation carries no information about k.
// ct-lint: certified secret(k)
template <class L>
[[nodiscard]] inline CtPoint<L> ec_mul_base_comb_ct(const u256t<L>& k) noexcept {
  const FixedBaseTable& table = FixedBaseTable::generator();
  CtPoint<L> acc = CtPoint<L>::identity();
  for (unsigned i = 0; i < FixedBaseTable::kWindows; ++i) {
    const L digit =
        (k[i / 16] >> ((i % 16) * FixedBaseTable::kWindowBits)) & L(0xf);
    u256t<L> sx = zero4<L>();
    u256t<L> sy = zero4<L>();
    for (unsigned j = 1; j <= FixedBaseTable::kEntries; ++j) {
      const AffinePoint& e = table.entry(i, j - 1);
      const L m = ct_eq_mask(digit, L(static_cast<std::uint64_t>(j)));
      for (std::size_t w = 0; w < 4; ++w) {
        sx[w] = sx[w] | (m & L(e.x.w[w]));
        sy[w] = sy[w] | (m & L(e.y.w[w]));
      }
    }
    const L nz = ct_mask_from_bit(ct_nonzero_bit(digit));
    CtPoint<L> q;
    q.x = sx;  // already all-zero when the digit is 0
    q.y = sy;
    q.y[0] = q.y[0] | (~nz & L(1));  // identity is (0 : 1 : 0)
    q.z = zero4<L>();
    q.z[0] = nz & L(1);
    acc = ct_add_complete(acc, q);
  }
  return acc;
}

/// Projective -> affine with a constant-time Fermat inversion.  The caller
/// guarantees z != 0 (k in [1, n-1] implies k*G is not the identity).
// ct-lint: certified secret(p)
template <class L>
inline void ct_normalize(const CtPoint<L>& p, u256t<L>& ax, u256t<L>& ay) noexcept {
  const u256t<L> zi = fp_inv_ct(p.z);
  ax = fp_mul_ct(p.x, zi);
  ay = fp_mul_ct(p.y, zi);
}

/// Digest -> scalar mod n without the branchy conditional subtraction of
/// sn_reduce: used at keygen, where the digest IS the secret key
/// candidate.  The result stays secret — the caller moves it straight
/// into ct::secret storage.
// ct-lint: certified secret(digest)
[[nodiscard]] inline U256 digest_to_scalar_ct(const Digest& digest) noexcept {
  U256 x = U256::from_bytes(
      std::span<const std::uint8_t, 32>(digest.data(), digest.size()));
  u256t<std::uint64_t> xt = sn_reduce_ct(lift_secret<std::uint64_t>(x));
  const U256 out{xt[0], xt[1], xt[2], xt[3]};
  secure_wipe(xt);
  secure_wipe(x);
  return out;
}

// ---- the sign path ----------------------------------------------------------

/// k * G as a public affine point, via the constant-time comb.  Used for
/// public-key derivation at keygen, where k is the private scalar.
// ct-lint: certified secret(k) public-return
template <class L>
[[nodiscard]] inline AffinePoint ec_mul_base_ct(const U256& k) noexcept {
  u256t<L> kt = sn_reduce_ct(lift_secret<L>(k));
  CtPoint<L> p = ec_mul_base_comb_ct(kt);
  u256t<L> ax;
  u256t<L> ay;
  ct_normalize(p, ax, ay);
  // The result is the public key / nonce point — public by definition.
  const AffinePoint out{declassify_u256(ax), declassify_u256(ay), false};
  secure_wipe(kt);
  secure_wipe(p);
  secure_wipe(ax);
  secure_wipe(ay);
  return out;
}

/// Deterministic Schnorr signing on certified primitives only:
///   k = HMAC(d, H(m || ctr)) mod n   (retry on the ~2^-256 zero case),
///   R = k*G  (fixed-window comb, complete additions, ct inversion),
///   e = H(Rx || Ry || Px || Py || m) mod n   (public data),
///   s = k + e*d mod n                (masked reductions).
/// Bit-identical to the variable-time reference (sign_reference): every
/// step computes the same canonical values, only the *how* changes.
// ct-lint: certified secret(d) public-return
template <class L>
[[nodiscard]] inline Signature schnorr_sign_ct(
    const U256& d, const AffinePoint& pub,
    std::span<const std::uint8_t> message) {
  auto d_bytes = d.to_bytes();
  u256t<L> dt = lift_secret<L>(d);
  for (std::uint8_t counter = 0;; ++counter) {
    Sha256 msg_hash;
    msg_hash.update(message);
    msg_hash.update(std::span(&counter, 1));
    const Digest msg_digest = msg_hash.finish();
    Digest k_digest = hmac_sha256(
        std::span<const std::uint8_t>(d_bytes.data(), d_bytes.size()),
        std::span<const std::uint8_t>(msg_digest.data(), msg_digest.size()));
    U256 k_raw = U256::from_bytes(
        std::span<const std::uint8_t, 32>(k_digest.data(), k_digest.size()));
    secure_wipe(k_digest);
    u256t<L> kt = sn_reduce_ct(lift_secret<L>(k_raw));
    secure_wipe(k_raw);
    // Whether k == 0 is publicly observable (the retry changes the
    // counter) and happens with probability ~2^-256; declassifying the
    // single is-zero bit is the standard RFC 6979 shape.
    const std::uint64_t k_nonzero =
        declassify(ct_limb_value(ct_nonzero4(kt)));
    if (k_nonzero == 0) {
      secure_wipe(kt);
      continue;
    }
    CtPoint<L> rp = ec_mul_base_comb_ct(kt);
    u256t<L> rx;
    u256t<L> ry;
    ct_normalize(rp, rx, ry);
    // R is the published half of the signature: declassify it and hash
    // the public challenge with the plain (audited) SHA-256.
    const AffinePoint r{declassify_u256(rx), declassify_u256(ry), false};
    const U256 e = schnorr_challenge(r, pub, message);
    u256t<L> st = sn_add_ct(kt, sn_mul_ct(lift_public<L>(e), dt));
    const U256 s = declassify_u256(st);
    secure_wipe(kt);
    secure_wipe(st);
    secure_wipe(rp);
    secure_wipe(rx);
    secure_wipe(ry);
    secure_wipe(dt);
    secure_wipe(d_bytes);
    return Signature{r, s};
  }
}

}  // namespace identxx::crypto::ct
