#include "crypto/key_tier.hpp"

#include <iterator>
#include <utility>

namespace identxx::crypto {

AffinePoint KeyTierStore::to_point(const detail::PointId& id) noexcept {
  AffinePoint p;
  for (std::size_t i = 0; i < 4; ++i) {
    p.x.w[i] = id[i];
    p.y.w[i] = id[i + 4];
  }
  p.infinity = false;
  return p;
}

std::size_t KeyTierStore::entry_bytes(const Entry& e) const noexcept {
  std::size_t total = 0;
  if (e.hot) total += hot_table_bytes();
  if (e.warm) total += warm_table_bytes();
  return total;
}

void KeyTierStore::touch_lru(Map::iterator it) {
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
}

void KeyTierStore::drop_tables(Map::iterator it) {
  Entry& e = it->second;
  const std::size_t freed = entry_bytes(e);
  if (freed == 0) return;
  bytes_ -= freed;
  if (e.tier == KeyTier::kHot) --hot_count_;
  if (e.tier == KeyTier::kWarm) --warm_count_;
  e.hot.reset();
  e.warm.reset();
  e.tier = KeyTier::kCold;
  lru_.erase(e.lru_pos);
  e.lru_pos = lru_.end();
}

bool KeyTierStore::reclaim(std::size_t needed, const detail::PointId& keep) {
  if (needed > config_.table_budget_bytes) return false;
  while (bytes_ + needed > config_.table_budget_bytes) {
    // Walk victims from the cold end, skipping the key being promoted.
    auto victim = lru_.end();
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      if (*it != keep) {
        victim = std::next(it).base();
        break;
      }
    }
    if (victim == lru_.end()) return false;
    const auto vit = keys_.find(*victim);
    drop_tables(vit);
    // Demoted keys re-earn their table from scratch; otherwise a pair of
    // keys contending for the last slot would rebuild on every use.
    vit->second.count = 0;
    ++stats_.demotions;
  }
  return true;
}

void KeyTierStore::promote(Map::iterator it) {
  Entry& e = it->second;
  const bool wants_hot = e.count >= config_.hot_after;
  const bool wants_warm = e.count >= config_.warm_after;
  if (e.tier == KeyTier::kHot || (!wants_warm && !wants_hot)) return;
  if (e.tier == KeyTier::kWarm && !wants_hot) return;

  const AffinePoint point = to_point(it->first);
  if (wants_hot) {
    // Upgrading frees the warm table, so only the delta must fit.
    const std::size_t extra =
        hot_table_bytes() - (e.warm ? warm_table_bytes() : 0);
    if (!reclaim(extra, it->first)) {
      ++stats_.denied_builds;
      if (e.tier != KeyTier::kCold || !wants_warm) return;
      // Fall through: a hot build can be denied while a warm one fits.
    } else {
      auto table = std::make_shared<const FixedBaseTable>(point);
      if (e.warm) {
        bytes_ -= warm_table_bytes();
        e.warm.reset();
        --warm_count_;
      } else {
        lru_.push_front(it->first);
        e.lru_pos = lru_.begin();
      }
      e.hot = std::move(table);
      e.tier = KeyTier::kHot;
      bytes_ += hot_table_bytes();
      ++hot_count_;
      ++stats_.promotions;
      touch_lru(it);
      return;
    }
  }
  // Cold -> warm.
  if (!reclaim(warm_table_bytes(), it->first)) {
    ++stats_.denied_builds;
    return;
  }
  e.warm = std::make_shared<const GlvTable>(point);
  e.tier = KeyTier::kWarm;
  bytes_ += warm_table_bytes();
  ++warm_count_;
  ++stats_.promotions;
  lru_.push_front(it->first);
  e.lru_pos = lru_.begin();
}

void KeyTierStore::add(const AffinePoint& point) {
  if (point.infinity) return;
  const detail::PointId id = detail::point_id(point);
  const auto [it, inserted] = keys_.try_emplace(id);
  if (!inserted) return;
  it->second.lru_pos = lru_.end();
  // Eager hot build strictly into free budget: small deployments keep the
  // PR3 register-then-verify fast path, fleet-scale ones start cold.
  if (bytes_ + hot_table_bytes() <= config_.table_budget_bytes) {
    it->second.hot = std::make_shared<const FixedBaseTable>(point);
    it->second.tier = KeyTier::kHot;
    bytes_ += hot_table_bytes();
    ++hot_count_;
    ++stats_.promotions;
    lru_.push_front(id);
    it->second.lru_pos = lru_.begin();
  }
}

void KeyTierStore::remove(const AffinePoint& point) {
  const auto it = keys_.find(detail::point_id(point));
  if (it == keys_.end()) return;
  drop_tables(it);
  keys_.erase(it);
}

bool KeyTierStore::contains(const AffinePoint& point) const {
  return keys_.find(detail::point_id(point)) != keys_.end();
}

KeyTierStore::Tables KeyTierStore::use(const AffinePoint& point,
                                       std::uint64_t uses) {
  const auto it = keys_.find(detail::point_id(point));
  if (it == keys_.end()) return {};
  Entry& e = it->second;
  e.count += uses;
  if (e.tier != KeyTier::kHot) {
    promote(it);
  }
  if (e.tier != KeyTier::kCold) touch_lru(it);
  return Tables{e.tier, e.hot, e.warm};
}

KeyTierStore::Tables KeyTierStore::peek(const AffinePoint& point) const {
  const auto it = keys_.find(detail::point_id(point));
  if (it == keys_.end()) return {};
  const Entry& e = it->second;
  return Tables{e.tier, e.hot, e.warm};
}

}  // namespace identxx::crypto
