#include "crypto/sha256.hpp"

#include <bit>
#include <cstring>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

#include "crypto/ct.hpp"
#include "util/hex.hpp"

namespace identxx::crypto {

namespace {

constexpr std::array<std::uint32_t, 64> kRoundConstants = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::array<std::uint32_t, 8> kInitialState = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

[[nodiscard]] std::uint32_t load_be32(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

void store_be32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

#if defined(__x86_64__)

/// One compression round trip through the SHA extension: two rounds per
/// _mm_sha256rnds2_epu32, message schedule kept in four 128-bit lanes.
/// Bit-identical to the portable loop — the differential KATs cover both.
__attribute__((target("sha,sse4.1")))
void process_block_shani(std::uint32_t* state, const std::uint8_t* block) noexcept {
  const __m128i kShuffle =
      _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);
  const auto* k = reinterpret_cast<const __m128i*>(kRoundConstants.data());

  // Load state as the ABEF / CDGH lane pairs the instructions expect.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state));
  __m128i state1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state + 4));
  tmp = _mm_shuffle_epi32(tmp, 0xb1);        // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1b);  // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);   // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xf0);        // CDGH

  const __m128i abef_save = state0;
  const __m128i cdgh_save = state1;
  const auto* in = reinterpret_cast<const __m128i*>(block);

  __m128i msg0 = _mm_shuffle_epi8(_mm_loadu_si128(in + 0), kShuffle);
  __m128i msg1 = _mm_shuffle_epi8(_mm_loadu_si128(in + 1), kShuffle);
  __m128i msg2 = _mm_shuffle_epi8(_mm_loadu_si128(in + 2), kShuffle);
  __m128i msg3 = _mm_shuffle_epi8(_mm_loadu_si128(in + 3), kShuffle);

  // Rounds 0-63, unrolled in groups of four: each group consumes the
  // current message lane and (through group 11) replaces it with the
  // schedule words sixteen rounds ahead:
  //   lane' = msg2(msg1(lane, next) + alignr(prev, prev2, 4), prev).
  __m128i msg;
#define IDENTXX_SHA_ROUNDS(i, m0, m1, m2, m3)                            \
  msg = _mm_add_epi32(m0, _mm_loadu_si128(k + (i)));                     \
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);                   \
  msg = _mm_shuffle_epi32(msg, 0x0e);                                    \
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);                   \
  if ((i) < 12) {                                                        \
    m0 = _mm_sha256msg1_epu32(m0, m1);                                   \
    m0 = _mm_add_epi32(m0, _mm_alignr_epi8(m3, m2, 4));                  \
    m0 = _mm_sha256msg2_epu32(m0, m3);                                   \
  }
  IDENTXX_SHA_ROUNDS(0, msg0, msg1, msg2, msg3)
  IDENTXX_SHA_ROUNDS(1, msg1, msg2, msg3, msg0)
  IDENTXX_SHA_ROUNDS(2, msg2, msg3, msg0, msg1)
  IDENTXX_SHA_ROUNDS(3, msg3, msg0, msg1, msg2)
  IDENTXX_SHA_ROUNDS(4, msg0, msg1, msg2, msg3)
  IDENTXX_SHA_ROUNDS(5, msg1, msg2, msg3, msg0)
  IDENTXX_SHA_ROUNDS(6, msg2, msg3, msg0, msg1)
  IDENTXX_SHA_ROUNDS(7, msg3, msg0, msg1, msg2)
  IDENTXX_SHA_ROUNDS(8, msg0, msg1, msg2, msg3)
  IDENTXX_SHA_ROUNDS(9, msg1, msg2, msg3, msg0)
  IDENTXX_SHA_ROUNDS(10, msg2, msg3, msg0, msg1)
  IDENTXX_SHA_ROUNDS(11, msg3, msg0, msg1, msg2)
  IDENTXX_SHA_ROUNDS(12, msg0, msg1, msg2, msg3)
  IDENTXX_SHA_ROUNDS(13, msg1, msg2, msg3, msg0)
  IDENTXX_SHA_ROUNDS(14, msg2, msg3, msg0, msg1)
  IDENTXX_SHA_ROUNDS(15, msg3, msg0, msg1, msg2)
#undef IDENTXX_SHA_ROUNDS

  state0 = _mm_add_epi32(state0, abef_save);
  state1 = _mm_add_epi32(state1, cdgh_save);

  // ABEF / CDGH back to linear ABCD / EFGH.
  tmp = _mm_shuffle_epi32(state0, 0x1b);       // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xb1);    // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xf0); // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);    // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state + 4), state1);
}

bool shani_available() noexcept {
  static const bool available =
      __builtin_cpu_supports("sha") && __builtin_cpu_supports("sse4.1");
  return available;
}

#endif  // __x86_64__

}  // namespace

Sha256::Sha256() noexcept : state_(kInitialState), buffer_{} {}

Sha256& Sha256::update(std::span<const std::uint8_t> data) noexcept {
  total_bytes_ += data.size();
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(data.size(), buffer_.size() - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset += take;
    if (buffered_ == buffer_.size()) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
  return *this;
}

Sha256& Sha256::update(std::string_view data) noexcept {
  return update(std::span(reinterpret_cast<const std::uint8_t*>(data.data()),
                          data.size()));
}

Digest Sha256::finish() noexcept {
  const std::uint64_t bit_length = total_bytes_ * 8;
  // The whole padding in one update: 0x80, zeros to 56 mod 64, then the
  // 8-byte big-endian bit length.
  std::array<std::uint8_t, 72> pad{};
  pad[0] = 0x80;
  const std::size_t pad_len = (buffered_ < 56 ? 56 : 120) - buffered_;
  for (std::size_t i = 0; i < 8; ++i) {
    pad[pad_len + i] = static_cast<std::uint8_t>(bit_length >> (56 - 8 * i));
  }
  update(std::span(pad.data(), pad_len + 8));

  Digest out{};
  for (std::size_t i = 0; i < 8; ++i) store_be32(out.data() + 4 * i, state_[i]);
  // The context is exhausted after finish(); erase the buffered message
  // tail and the chaining state so secret-keyed hashing (HMAC nonce
  // derivation) leaves no residue in a long-lived hasher object.
  ct::secure_wipe(buffer_);
  ct::secure_wipe(state_);
  buffered_ = 0;
  total_bytes_ = 0;
  return out;
}

Digest Sha256::hash(std::span<const std::uint8_t> data) noexcept {
  Sha256 h;
  h.update(data);
  return h.finish();
}

Digest Sha256::hash(std::string_view data) noexcept {
  Sha256 h;
  h.update(data);
  return h.finish();
}

void Sha256::process_block(const std::uint8_t* block) noexcept {
#if defined(__x86_64__)
  if (shani_available()) {
    process_block_shani(state_.data(), block);
    return;
  }
#endif
  std::array<std::uint32_t, 64> w;
  for (std::size_t i = 0; i < 16; ++i) w[i] = load_be32(block + 4 * i);
  for (std::size_t i = 16; i < 64; ++i) {
    const std::uint32_t s0 = std::rotr(w[i - 15], 7) ^ std::rotr(w[i - 15], 18) ^
                             (w[i - 15] >> 3);
    const std::uint32_t s1 = std::rotr(w[i - 2], 17) ^ std::rotr(w[i - 2], 19) ^
                             (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  std::uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];

  for (std::size_t i = 0; i < 64; ++i) {
    const std::uint32_t s1 =
        std::rotr(e, 6) ^ std::rotr(e, 11) ^ std::rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t temp1 = h + s1 + ch + kRoundConstants[i] + w[i];
    const std::uint32_t s0 =
        std::rotr(a, 2) ^ std::rotr(a, 13) ^ std::rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

std::string to_hex(const Digest& digest) {
  return util::hex_encode(std::span(digest.data(), digest.size()));
}

}  // namespace identxx::crypto
