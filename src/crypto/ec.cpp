#include "crypto/ec.hpp"

#include <vector>

namespace identxx::crypto {

namespace {

__extension__ typedef unsigned __int128 u128;

// p = 2^256 - kC where kC = 2^32 + 977 = 0x1000003d1.
constexpr std::uint64_t kC = 0x1000003d1ULL;

const U256 kP{0xfffffffefffffc2fULL, 0xffffffffffffffffULL,
              0xffffffffffffffffULL, 0xffffffffffffffffULL};
const U256 kN{0xbfd25e8cd0364141ULL, 0xbaaedce6af48a03bULL,
              0xfffffffffffffffeULL, 0xffffffffffffffffULL};
const U256 kGx{0x59f2815b16f81798ULL, 0x029bfcdb2dce28d9ULL,
               0x55a06295ce870b07ULL, 0x79be667ef9dcbbacULL};
const U256 kGy{0x9c47d08ffb10d4b8ULL, 0xfd17b448a6855419ULL,
               0x5da4fbfc0e1108a8ULL, 0x483ada7726a3c465ULL};

// n = 2^256 - kNC where kNC = 0x14551231950b75fc4402da1732fc9bebf
// (129 bits, three limbs little-endian).
constexpr std::array<std::uint64_t, 3> kNC{0x402da1732fc9bebfULL,
                                           0x4551231950b75fc4ULL, 1ULL};

/// Multiply a 256-bit value by the 33-bit constant kC and add `addend`;
/// the result has at most 290 significant bits, returned as 5 limbs.
void mul_c_add(const U256& a, const U256& addend,
               std::array<std::uint64_t, 5>& out) noexcept {
  u128 carry = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const u128 cur = static_cast<u128>(a.w[i]) * kC + addend.w[i] + carry;
    out[i] = static_cast<std::uint64_t>(cur);
    carry = cur >> 64;
  }
  out[4] = static_cast<std::uint64_t>(carry);
}

/// Reduce a 512-bit product modulo p.
U256 fp_reduce(const U512& x) noexcept {
  // Pass 1: x = H*2^256 + L  ==>  H*kC + L  (< 2^290).
  std::array<std::uint64_t, 5> t{};
  mul_c_add(x.high(), x.low(), t);

  // Pass 2: fold the 34 overflow bits: t = t4*2^256 + t_lo ==> t4*kC + t_lo.
  U256 lo{t[0], t[1], t[2], t[3]};
  u128 carry = static_cast<u128>(t[4]) * kC;
  U256 folded;
  for (std::size_t i = 0; i < 4; ++i) {
    const u128 cur = static_cast<u128>(lo.w[i]) + static_cast<std::uint64_t>(carry);
    folded.w[i] = static_cast<std::uint64_t>(cur);
    carry = (carry >> 64) + (cur >> 64);
  }
  // carry here is 0 or 1 (value < 2^256 + 2^98).
  if (carry != 0) {
    // Add kC once more for the wrapped 2^256.
    u128 c2 = kC;
    for (std::size_t i = 0; i < 4 && c2 != 0; ++i) {
      const u128 cur = static_cast<u128>(folded.w[i]) + static_cast<std::uint64_t>(c2);
      folded.w[i] = static_cast<std::uint64_t>(cur);
      c2 = cur >> 64;
    }
  }
  // Final conditional subtraction.
  while (U256::cmp(folded, kP) >= 0) {
    folded = U256::sub(folded, kP).first;
  }
  return folded;
}

/// Width-5 wNAF digit string, least-significant first: digits are zero or
/// odd in [-15, 15], and any two nonzero digits are at least 5 apart.
/// `k` must be < n (so the in-place adjustments cannot overflow 256 bits).
/// Returns the digit count (<= 257).
unsigned wnaf5(U256 k, std::array<std::int8_t, 257>& digits) noexcept {
  unsigned len = 0;
  while (!k.is_zero()) {
    std::int8_t d = 0;
    if (k.bit(0)) {
      const std::uint64_t low = k.w[0] & 31u;
      if (low >= 16) {
        d = static_cast<std::int8_t>(static_cast<int>(low) - 32);
        k = U256::add(k, U256{32u - low}).first;
      } else {
        d = static_cast<std::int8_t>(low);
        k = U256::sub(k, U256{low}).first;
      }
    }
    digits[len++] = d;
    k = k.shr1();
  }
  return len;
}

/// Odd multiples {1P, 3P, ..., 15P} in Jacobian coordinates.
std::array<JacobianPoint, 8> odd_multiples(const AffinePoint& p) noexcept {
  std::array<JacobianPoint, 8> tab;
  tab[0] = JacobianPoint::from_affine(p);
  const JacobianPoint p2 = ec_double(tab[0]);
  for (std::size_t i = 1; i < tab.size(); ++i) {
    tab[i] = ec_add(tab[i - 1], p2);
  }
  return tab;
}

/// Normalize `points` to affine with ONE field inversion (Montgomery's
/// trick); identities map to the affine identity.
void batch_normalize(const JacobianPoint* points, AffinePoint* out,
                     std::size_t count) {
  std::vector<U256> prefix(count);
  U256 running{1};
  for (std::size_t i = 0; i < count; ++i) {
    prefix[i] = running;
    if (!points[i].is_identity()) running = fp_mul(running, points[i].z);
  }
  U256 inv = running.is_zero() ? U256{} : fp_inv(running);
  for (std::size_t i = count; i-- > 0;) {
    if (points[i].is_identity()) {
      out[i] = AffinePoint::identity();
      continue;
    }
    const U256 z_inv = fp_mul(inv, prefix[i]);
    inv = fp_mul(inv, points[i].z);
    const U256 z_inv2 = fp_sqr(z_inv);
    out[i] = AffinePoint{fp_mul(points[i].x, z_inv2),
                         fp_mul(points[i].y, fp_mul(z_inv2, z_inv)), false};
  }
}

/// Shared affine odd multiples {1G, 3G, ..., 15G} for the Shamir pass.
const std::array<AffinePoint, 8>& generator_odd_multiples() {
  static const std::array<AffinePoint, 8> tab = [] {
    const auto jac = odd_multiples(AffinePoint::generator());
    std::array<AffinePoint, 8> affine;
    batch_normalize(jac.data(), affine.data(), jac.size());
    return affine;
  }();
  return tab;
}

}  // namespace

const U256& Secp256k1::p() noexcept { return kP; }
const U256& Secp256k1::n() noexcept { return kN; }
const U256& Secp256k1::gx() noexcept { return kGx; }
const U256& Secp256k1::gy() noexcept { return kGy; }

U256 fp_add(const U256& a, const U256& b) noexcept {
  return add_mod(a, b, kP);
}

U256 fp_sub(const U256& a, const U256& b) noexcept {
  return sub_mod(a, b, kP);
}

U256 fp_mul(const U256& a, const U256& b) noexcept {
  return fp_reduce(U256::mul_wide(a, b));
}

U256 fp_sqr(const U256& a) noexcept { return fp_mul(a, a); }

U256 fp_inv(const U256& a) noexcept {
  // Fermat: a^(p-2).  Square-and-multiply with the fast field multiply.
  const U256 e = U256::sub(kP, U256{2}).first;
  U256 result{1};
  const unsigned bits = e.bit_length();
  for (int i = static_cast<int>(bits) - 1; i >= 0; --i) {
    result = fp_sqr(result);
    if (e.bit(static_cast<unsigned>(i))) result = fp_mul(result, a);
  }
  return result;
}

U256 sn_reduce(const U512& x) noexcept {
  // Fold x = H*2^256 + L ==> L + H*kNC until the high half vanishes.
  // kNC is 129 bits, so every fold shrinks the value by ~127 bits; the
  // loop runs at most five times for a full 512-bit input.
  std::array<std::uint64_t, 8> t = x.w;
  while (t[4] | t[5] | t[6] | t[7]) {
    const std::array<std::uint64_t, 4> hi{t[4], t[5], t[6], t[7]};
    std::array<std::uint64_t, 8> acc{t[0], t[1], t[2], t[3], 0, 0, 0, 0};
    for (std::size_t i = 0; i < 4; ++i) {
      u128 carry = 0;
      for (std::size_t j = 0; j < 3; ++j) {
        const u128 cur =
            acc[i + j] + static_cast<u128>(hi[i]) * kNC[j] + carry;
        acc[i + j] = static_cast<std::uint64_t>(cur);
        carry = cur >> 64;
      }
      for (std::size_t k = i + 3; carry != 0 && k < 8; ++k) {
        const u128 cur = acc[k] + carry;
        acc[k] = static_cast<std::uint64_t>(cur);
        carry = cur >> 64;
      }
    }
    t = acc;
  }
  U256 r{t[0], t[1], t[2], t[3]};
  while (U256::cmp(r, kN) >= 0) r = U256::sub(r, kN).first;
  return r;
}

U256 sn_reduce(const U256& x) noexcept {
  // x < 2^256 < 2n, so one conditional subtraction suffices.
  return U256::cmp(x, kN) >= 0 ? U256::sub(x, kN).first : x;
}

U256 sn_add(const U256& a, const U256& b) noexcept {
  return add_mod(a, b, kN);
}

U256 sn_sub(const U256& a, const U256& b) noexcept {
  return sub_mod(a, b, kN);
}

U256 sn_mul(const U256& a, const U256& b) noexcept {
  return sn_reduce(U256::mul_wide(a, b));
}

bool AffinePoint::on_curve() const noexcept {
  if (infinity) return true;
  // y^2 == x^3 + 7.
  const U256 lhs = fp_sqr(y);
  const U256 rhs = fp_add(fp_mul(fp_sqr(x), x), U256{7});
  return lhs == rhs;
}

AffinePoint AffinePoint::generator() noexcept {
  return AffinePoint{kGx, kGy, false};
}

JacobianPoint JacobianPoint::from_affine(const AffinePoint& p) noexcept {
  if (p.infinity) return identity();
  return JacobianPoint{p.x, p.y, U256{1}};
}

AffinePoint JacobianPoint::to_affine() const noexcept {
  if (is_identity()) return AffinePoint::identity();
  const U256 z_inv = fp_inv(z);
  const U256 z_inv2 = fp_sqr(z_inv);
  const U256 z_inv3 = fp_mul(z_inv2, z_inv);
  return AffinePoint{fp_mul(x, z_inv2), fp_mul(y, z_inv3), false};
}

JacobianPoint ec_double(const JacobianPoint& p) noexcept {
  if (p.is_identity() || p.y.is_zero()) return JacobianPoint::identity();
  // dbl-2009-l formulas for a = 0.
  const U256 a = fp_sqr(p.x);                       // A = X^2
  const U256 b = fp_sqr(p.y);                       // B = Y^2
  const U256 c = fp_sqr(b);                         // C = B^2
  U256 d = fp_sub(fp_sqr(fp_add(p.x, b)), fp_add(a, c));
  d = fp_add(d, d);                                 // D = 2((X+B)^2 - A - C)
  const U256 e = fp_add(fp_add(a, a), a);           // E = 3A
  const U256 f = fp_sqr(e);                         // F = E^2
  const U256 x3 = fp_sub(f, fp_add(d, d));          // X3 = F - 2D
  U256 c8 = fp_add(c, c);
  c8 = fp_add(c8, c8);
  c8 = fp_add(c8, c8);                              // 8C
  const U256 y3 = fp_sub(fp_mul(e, fp_sub(d, x3)), c8);
  const U256 yz = fp_mul(p.y, p.z);
  const U256 z3 = fp_add(yz, yz);                   // Z3 = 2YZ
  return JacobianPoint{x3, y3, z3};
}

JacobianPoint ec_add(const JacobianPoint& p, const JacobianPoint& q) noexcept {
  if (p.is_identity()) return q;
  if (q.is_identity()) return p;
  // add-2007-bl formulas.
  const U256 z1z1 = fp_sqr(p.z);
  const U256 z2z2 = fp_sqr(q.z);
  const U256 u1 = fp_mul(p.x, z2z2);
  const U256 u2 = fp_mul(q.x, z1z1);
  const U256 s1 = fp_mul(fp_mul(p.y, q.z), z2z2);
  const U256 s2 = fp_mul(fp_mul(q.y, p.z), z1z1);
  if (u1 == u2) {
    if (s1 == s2) return ec_double(p);
    return JacobianPoint::identity();  // P + (-P)
  }
  const U256 h = fp_sub(u2, u1);
  U256 i = fp_add(h, h);
  i = fp_sqr(i);                                    // I = (2H)^2
  const U256 j = fp_mul(h, i);
  U256 r = fp_sub(s2, s1);
  r = fp_add(r, r);                                 // r = 2(S2 - S1)
  const U256 v = fp_mul(u1, i);
  const U256 x3 = fp_sub(fp_sub(fp_sqr(r), j), fp_add(v, v));
  U256 s1j = fp_mul(s1, j);
  s1j = fp_add(s1j, s1j);
  const U256 y3 = fp_sub(fp_mul(r, fp_sub(v, x3)), s1j);
  // Z3 = ((Z1+Z2)^2 - Z1Z1 - Z2Z2) * H.
  const U256 z3 = fp_mul(
      fp_sub(fp_sqr(fp_add(p.z, q.z)), fp_add(z1z1, z2z2)), h);
  return JacobianPoint{x3, y3, z3};
}

JacobianPoint ec_add_mixed(const JacobianPoint& p, const AffinePoint& q) noexcept {
  if (q.infinity) return p;
  if (p.is_identity()) return JacobianPoint::from_affine(q);
  // madd-2007-bl formulas (Z2 = 1).
  const U256 z1z1 = fp_sqr(p.z);
  const U256 u2 = fp_mul(q.x, z1z1);
  const U256 s2 = fp_mul(fp_mul(q.y, p.z), z1z1);
  if (u2 == p.x) {
    if (s2 == p.y) return ec_double(p);
    return JacobianPoint::identity();  // P + (-P)
  }
  const U256 h = fp_sub(u2, p.x);
  const U256 hh = fp_sqr(h);
  U256 i = fp_add(hh, hh);
  i = fp_add(i, i);                                 // I = 4HH
  const U256 j = fp_mul(h, i);
  U256 r = fp_sub(s2, p.y);
  r = fp_add(r, r);                                 // r = 2(S2 - Y1)
  const U256 v = fp_mul(p.x, i);
  const U256 x3 = fp_sub(fp_sub(fp_sqr(r), j), fp_add(v, v));
  U256 yj = fp_mul(p.y, j);
  yj = fp_add(yj, yj);
  const U256 y3 = fp_sub(fp_mul(r, fp_sub(v, x3)), yj);
  // Z3 = (Z1 + H)^2 - Z1Z1 - HH.
  const U256 z3 = fp_sub(fp_sub(fp_sqr(fp_add(p.z, h)), z1z1), hh);
  return JacobianPoint{x3, y3, z3};
}

JacobianPoint ec_mul(const U256& k, const AffinePoint& p) noexcept {
  if (p.infinity) return JacobianPoint::identity();
  const U256 kr = sn_reduce(k);
  if (kr.is_zero()) return JacobianPoint::identity();
  const std::array<JacobianPoint, 8> tab = odd_multiples(p);
  std::array<std::int8_t, 257> digits;
  const unsigned len = wnaf5(kr, digits);
  JacobianPoint acc = JacobianPoint::identity();
  for (int i = static_cast<int>(len) - 1; i >= 0; --i) {
    acc = ec_double(acc);
    const int d = digits[static_cast<std::size_t>(i)];
    if (d > 0) {
      acc = ec_add(acc, tab[static_cast<std::size_t>((d - 1) / 2)]);
    } else if (d < 0) {
      acc = ec_add(acc, ec_negate(tab[static_cast<std::size_t>((-d - 1) / 2)]));
    }
  }
  return acc;
}

JacobianPoint ec_mul_naive(const U256& k, const AffinePoint& p) noexcept {
  JacobianPoint acc = JacobianPoint::identity();
  const JacobianPoint base = JacobianPoint::from_affine(p);
  const unsigned bits = k.bit_length();
  for (int i = static_cast<int>(bits) - 1; i >= 0; --i) {
    acc = ec_double(acc);
    if (k.bit(static_cast<unsigned>(i))) acc = ec_add(acc, base);
  }
  return acc;
}

FixedBaseTable::FixedBaseTable(const AffinePoint& base) : base_(base) {
  // Row i holds {1, 2, ..., 15} * (16^i * base) in Jacobian form; one
  // batch normalization turns all 960 points affine with a single
  // inversion.
  std::vector<JacobianPoint> jac(kWindows * kEntries);
  JacobianPoint window_base = JacobianPoint::from_affine(base);
  for (unsigned i = 0; i < kWindows; ++i) {
    JacobianPoint cur = window_base;
    for (unsigned j = 0; j < kEntries; ++j) {
      jac[i * kEntries + j] = cur;
      cur = ec_add(cur, window_base);
    }
    window_base = cur;  // 16^(i+1) * base
  }
  std::vector<AffinePoint> affine(jac.size());
  batch_normalize(jac.data(), affine.data(), jac.size());
  for (unsigned i = 0; i < kWindows; ++i) {
    for (unsigned j = 0; j < kEntries; ++j) {
      table_[i][j] = affine[i * kEntries + j];
    }
  }
}

JacobianPoint FixedBaseTable::mul(const U256& k) const noexcept {
  const U256 kr = sn_reduce(k);
  JacobianPoint acc = JacobianPoint::identity();
  for (unsigned i = 0; i < kWindows; ++i) {
    const unsigned window =
        static_cast<unsigned>(kr.w[i / 16] >> ((i % 16) * kWindowBits)) & 0xfu;
    if (window != 0) acc = ec_add_mixed(acc, table_[i][window - 1]);
  }
  return acc;
}

const FixedBaseTable& FixedBaseTable::generator() {
  static const FixedBaseTable table(AffinePoint::generator());
  return table;
}

JacobianPoint ec_mul_base(const U256& k) noexcept {
  return FixedBaseTable::generator().mul(k);
}

JacobianPoint ec_mul_add(const U256& a, const U256& b,
                         const AffinePoint& p) noexcept {
  if (p.infinity || sn_reduce(b).is_zero()) return ec_mul_base(a);
  const U256 ar = sn_reduce(a);
  const U256 br = sn_reduce(b);
  if (ar.is_zero()) return ec_mul(br, p);

  const std::array<AffinePoint, 8>& g_tab = generator_odd_multiples();
  const std::array<JacobianPoint, 8> p_tab = odd_multiples(p);
  std::array<std::int8_t, 257> da;
  std::array<std::int8_t, 257> db;
  const unsigned la = wnaf5(ar, da);
  const unsigned lb = wnaf5(br, db);
  const unsigned len = la > lb ? la : lb;

  JacobianPoint acc = JacobianPoint::identity();
  for (int i = static_cast<int>(len) - 1; i >= 0; --i) {
    acc = ec_double(acc);
    const std::size_t idx = static_cast<std::size_t>(i);
    if (idx < la && da[idx] != 0) {
      const int d = da[idx];
      acc = d > 0 ? ec_add_mixed(acc, g_tab[static_cast<std::size_t>((d - 1) / 2)])
                  : ec_add_mixed(
                        acc, ec_negate(g_tab[static_cast<std::size_t>((-d - 1) / 2)]));
    }
    if (idx < lb && db[idx] != 0) {
      const int d = db[idx];
      acc = d > 0 ? ec_add(acc, p_tab[static_cast<std::size_t>((d - 1) / 2)])
                  : ec_add(acc,
                           ec_negate(p_tab[static_cast<std::size_t>((-d - 1) / 2)]));
    }
  }
  return acc;
}

JacobianPoint ec_mul_add(const U256& a, const U256& b,
                         const FixedBaseTable& p_table) noexcept {
  // No doubling chain: both bases are comb tables, so the whole sum is a
  // sequence of mixed additions into one accumulator.
  const U256 ar = sn_reduce(a);
  const U256 br = sn_reduce(b);
  JacobianPoint acc = JacobianPoint::identity();
  const FixedBaseTable& g_table = FixedBaseTable::generator();
  for (unsigned i = 0; i < FixedBaseTable::kWindows; ++i) {
    const unsigned shift = (i % 16) * FixedBaseTable::kWindowBits;
    const unsigned wa = static_cast<unsigned>(ar.w[i / 16] >> shift) & 0xfu;
    const unsigned wb = static_cast<unsigned>(br.w[i / 16] >> shift) & 0xfu;
    if (wa != 0) acc = ec_add_mixed(acc, g_table.table_[i][wa - 1]);
    if (wb != 0) acc = ec_add_mixed(acc, p_table.table_[i][wb - 1]);
  }
  return acc;
}

bool ec_equals_affine(const JacobianPoint& p, const AffinePoint& q) noexcept {
  if (p.is_identity()) return q.infinity;
  if (q.infinity) return false;
  // X/Z^2 == qx  and  Y/Z^3 == qy, cross-multiplied.
  const U256 z2 = fp_sqr(p.z);
  if (p.x != fp_mul(q.x, z2)) return false;
  return p.y == fp_mul(q.y, fp_mul(z2, p.z));
}

AffinePoint ec_negate(const AffinePoint& p) noexcept {
  if (p.infinity) return p;
  return AffinePoint{p.x, fp_sub(U256{}, p.y), false};
}

JacobianPoint ec_negate(const JacobianPoint& p) noexcept {
  if (p.is_identity()) return p;
  return JacobianPoint{p.x, fp_sub(U256{}, p.y), p.z};
}

}  // namespace identxx::crypto
