#include "crypto/ec.hpp"

namespace identxx::crypto {

namespace {

__extension__ typedef unsigned __int128 u128;

// p = 2^256 - kC where kC = 2^32 + 977 = 0x1000003d1.
constexpr std::uint64_t kC = 0x1000003d1ULL;

const U256 kP{0xfffffffefffffc2fULL, 0xffffffffffffffffULL,
              0xffffffffffffffffULL, 0xffffffffffffffffULL};
const U256 kN{0xbfd25e8cd0364141ULL, 0xbaaedce6af48a03bULL,
              0xfffffffffffffffeULL, 0xffffffffffffffffULL};
const U256 kGx{0x59f2815b16f81798ULL, 0x029bfcdb2dce28d9ULL,
               0x55a06295ce870b07ULL, 0x79be667ef9dcbbacULL};
const U256 kGy{0x9c47d08ffb10d4b8ULL, 0xfd17b448a6855419ULL,
               0x5da4fbfc0e1108a8ULL, 0x483ada7726a3c465ULL};

/// Multiply a 256-bit value by the 33-bit constant kC and add `addend`;
/// the result has at most 290 significant bits, returned as 5 limbs.
void mul_c_add(const U256& a, const U256& addend,
               std::array<std::uint64_t, 5>& out) noexcept {
  u128 carry = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const u128 cur = static_cast<u128>(a.w[i]) * kC + addend.w[i] + carry;
    out[i] = static_cast<std::uint64_t>(cur);
    carry = cur >> 64;
  }
  out[4] = static_cast<std::uint64_t>(carry);
}

/// Reduce a 512-bit product modulo p.
U256 fp_reduce(const U512& x) noexcept {
  // Pass 1: x = H*2^256 + L  ==>  H*kC + L  (< 2^290).
  std::array<std::uint64_t, 5> t{};
  mul_c_add(x.high(), x.low(), t);

  // Pass 2: fold the 34 overflow bits: t = t4*2^256 + t_lo ==> t4*kC + t_lo.
  U256 lo{t[0], t[1], t[2], t[3]};
  u128 carry = static_cast<u128>(t[4]) * kC;
  U256 folded;
  for (std::size_t i = 0; i < 4; ++i) {
    const u128 cur = static_cast<u128>(lo.w[i]) + static_cast<std::uint64_t>(carry);
    folded.w[i] = static_cast<std::uint64_t>(cur);
    carry = (carry >> 64) + (cur >> 64);
  }
  // carry here is 0 or 1 (value < 2^256 + 2^98).
  if (carry != 0) {
    // Add kC once more for the wrapped 2^256.
    u128 c2 = kC;
    for (std::size_t i = 0; i < 4 && c2 != 0; ++i) {
      const u128 cur = static_cast<u128>(folded.w[i]) + static_cast<std::uint64_t>(c2);
      folded.w[i] = static_cast<std::uint64_t>(cur);
      c2 = cur >> 64;
    }
  }
  // Final conditional subtraction.
  while (U256::cmp(folded, kP) >= 0) {
    folded = U256::sub(folded, kP).first;
  }
  return folded;
}

}  // namespace

const U256& Secp256k1::p() noexcept { return kP; }
const U256& Secp256k1::n() noexcept { return kN; }
const U256& Secp256k1::gx() noexcept { return kGx; }
const U256& Secp256k1::gy() noexcept { return kGy; }

U256 fp_add(const U256& a, const U256& b) noexcept {
  return add_mod(a, b, kP);
}

U256 fp_sub(const U256& a, const U256& b) noexcept {
  return sub_mod(a, b, kP);
}

U256 fp_mul(const U256& a, const U256& b) noexcept {
  return fp_reduce(U256::mul_wide(a, b));
}

U256 fp_sqr(const U256& a) noexcept { return fp_mul(a, a); }

U256 fp_inv(const U256& a) noexcept {
  // Fermat: a^(p-2).  Square-and-multiply with the fast field multiply.
  const U256 e = U256::sub(kP, U256{2}).first;
  U256 result{1};
  const unsigned bits = e.bit_length();
  for (int i = static_cast<int>(bits) - 1; i >= 0; --i) {
    result = fp_sqr(result);
    if (e.bit(static_cast<unsigned>(i))) result = fp_mul(result, a);
  }
  return result;
}

bool AffinePoint::on_curve() const noexcept {
  if (infinity) return true;
  // y^2 == x^3 + 7.
  const U256 lhs = fp_sqr(y);
  const U256 rhs = fp_add(fp_mul(fp_sqr(x), x), U256{7});
  return lhs == rhs;
}

AffinePoint AffinePoint::generator() noexcept {
  return AffinePoint{kGx, kGy, false};
}

JacobianPoint JacobianPoint::from_affine(const AffinePoint& p) noexcept {
  if (p.infinity) return identity();
  return JacobianPoint{p.x, p.y, U256{1}};
}

AffinePoint JacobianPoint::to_affine() const noexcept {
  if (is_identity()) return AffinePoint::identity();
  const U256 z_inv = fp_inv(z);
  const U256 z_inv2 = fp_sqr(z_inv);
  const U256 z_inv3 = fp_mul(z_inv2, z_inv);
  return AffinePoint{fp_mul(x, z_inv2), fp_mul(y, z_inv3), false};
}

JacobianPoint ec_double(const JacobianPoint& p) noexcept {
  if (p.is_identity() || p.y.is_zero()) return JacobianPoint::identity();
  // dbl-2009-l formulas for a = 0.
  const U256 a = fp_sqr(p.x);                       // A = X^2
  const U256 b = fp_sqr(p.y);                       // B = Y^2
  const U256 c = fp_sqr(b);                         // C = B^2
  U256 d = fp_sub(fp_sqr(fp_add(p.x, b)), fp_add(a, c));
  d = fp_add(d, d);                                 // D = 2((X+B)^2 - A - C)
  const U256 e = fp_add(fp_add(a, a), a);           // E = 3A
  const U256 f = fp_sqr(e);                         // F = E^2
  const U256 x3 = fp_sub(f, fp_add(d, d));          // X3 = F - 2D
  U256 c8 = fp_add(c, c);
  c8 = fp_add(c8, c8);
  c8 = fp_add(c8, c8);                              // 8C
  const U256 y3 = fp_sub(fp_mul(e, fp_sub(d, x3)), c8);
  const U256 yz = fp_mul(p.y, p.z);
  const U256 z3 = fp_add(yz, yz);                   // Z3 = 2YZ
  return JacobianPoint{x3, y3, z3};
}

JacobianPoint ec_add(const JacobianPoint& p, const JacobianPoint& q) noexcept {
  if (p.is_identity()) return q;
  if (q.is_identity()) return p;
  // add-2007-bl formulas.
  const U256 z1z1 = fp_sqr(p.z);
  const U256 z2z2 = fp_sqr(q.z);
  const U256 u1 = fp_mul(p.x, z2z2);
  const U256 u2 = fp_mul(q.x, z1z1);
  const U256 s1 = fp_mul(fp_mul(p.y, q.z), z2z2);
  const U256 s2 = fp_mul(fp_mul(q.y, p.z), z1z1);
  if (u1 == u2) {
    if (s1 == s2) return ec_double(p);
    return JacobianPoint::identity();  // P + (-P)
  }
  const U256 h = fp_sub(u2, u1);
  U256 i = fp_add(h, h);
  i = fp_sqr(i);                                    // I = (2H)^2
  const U256 j = fp_mul(h, i);
  U256 r = fp_sub(s2, s1);
  r = fp_add(r, r);                                 // r = 2(S2 - S1)
  const U256 v = fp_mul(u1, i);
  const U256 x3 = fp_sub(fp_sub(fp_sqr(r), j), fp_add(v, v));
  U256 s1j = fp_mul(s1, j);
  s1j = fp_add(s1j, s1j);
  const U256 y3 = fp_sub(fp_mul(r, fp_sub(v, x3)), s1j);
  // Z3 = ((Z1+Z2)^2 - Z1Z1 - Z2Z2) * H.
  const U256 z3 = fp_mul(
      fp_sub(fp_sqr(fp_add(p.z, q.z)), fp_add(z1z1, z2z2)), h);
  return JacobianPoint{x3, y3, z3};
}

JacobianPoint ec_add_affine(const JacobianPoint& p, const AffinePoint& q) noexcept {
  return ec_add(p, JacobianPoint::from_affine(q));
}

JacobianPoint ec_mul(const U256& k, const AffinePoint& p) noexcept {
  JacobianPoint acc = JacobianPoint::identity();
  const JacobianPoint base = JacobianPoint::from_affine(p);
  const unsigned bits = k.bit_length();
  for (int i = static_cast<int>(bits) - 1; i >= 0; --i) {
    acc = ec_double(acc);
    if (k.bit(static_cast<unsigned>(i))) acc = ec_add(acc, base);
  }
  return acc;
}

JacobianPoint ec_mul_base(const U256& k) noexcept {
  return ec_mul(k, AffinePoint::generator());
}

AffinePoint ec_negate(const AffinePoint& p) noexcept {
  if (p.infinity) return p;
  return AffinePoint{p.x, fp_sub(U256{}, p.y), false};
}

}  // namespace identxx::crypto
