#include "crypto/ec.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <queue>
#include <vector>

namespace identxx::crypto {

namespace {

__extension__ typedef unsigned __int128 u128;

// p = 2^256 - kC where kC = 2^32 + 977 = 0x1000003d1.
constexpr std::uint64_t kC = 0x1000003d1ULL;

const U256 kP{0xfffffffefffffc2fULL, 0xffffffffffffffffULL,
              0xffffffffffffffffULL, 0xffffffffffffffffULL};
const U256 kN{0xbfd25e8cd0364141ULL, 0xbaaedce6af48a03bULL,
              0xfffffffffffffffeULL, 0xffffffffffffffffULL};
const U256 kGx{0x59f2815b16f81798ULL, 0x029bfcdb2dce28d9ULL,
               0x55a06295ce870b07ULL, 0x79be667ef9dcbbacULL};
const U256 kGy{0x9c47d08ffb10d4b8ULL, 0xfd17b448a6855419ULL,
               0x5da4fbfc0e1108a8ULL, 0x483ada7726a3c465ULL};

// n = 2^256 - kNC where kNC = 0x14551231950b75fc4402da1732fc9bebf
// (129 bits, three limbs little-endian).
constexpr std::array<std::uint64_t, 3> kNC{0x402da1732fc9bebfULL,
                                           0x4551231950b75fc4ULL, 1ULL};

// The field layer below is fully unrolled: operand-scanning 4x4 products,
// two kC folds and one conditional subtraction, with no loops, arrays
// indexed by variables, or U512 round-trips.  The loop-and-carry generic
// path (U256::mul_wide + mod) survives in u256.cpp as the differential
// oracle; the tests sweep these against it.  The unroll roughly halves
// fp_mul latency, which multiplies through every point operation on the
// verification hot path.

/// Fold an 8-limb product into [0, p): lo + hi*kC, fold the spill limb,
/// and subtract p at most once.
U256 fp_from_wide(const std::uint64_t r0, const std::uint64_t r1,
                  const std::uint64_t r2, const std::uint64_t r3,
                  const std::uint64_t r4, const std::uint64_t r5,
                  const std::uint64_t r6, const std::uint64_t r7) noexcept {
  // Pass 1: t = L + H*kC (< 2^256 + 2^97, five limbs).
  std::uint64_t t0;
  std::uint64_t t1;
  std::uint64_t t2;
  std::uint64_t t3;
  std::uint64_t t4;
  {
    u128 c = static_cast<u128>(r4) * kC + r0;
    t0 = static_cast<std::uint64_t>(c);
    c >>= 64;
    c += static_cast<u128>(r5) * kC + r1;
    t1 = static_cast<std::uint64_t>(c);
    c >>= 64;
    c += static_cast<u128>(r6) * kC + r2;
    t2 = static_cast<std::uint64_t>(c);
    c >>= 64;
    c += static_cast<u128>(r7) * kC + r3;
    t3 = static_cast<std::uint64_t>(c);
    t4 = static_cast<std::uint64_t>(c >> 64);
  }
  // Pass 2: fold the spill limb (t4 <= kC): t4*kC is 66 bits.
  U256 out;
  u128 c = static_cast<u128>(t4) * kC + t0;
  out.w[0] = static_cast<std::uint64_t>(c);
  c >>= 64;
  c += t1;
  out.w[1] = static_cast<std::uint64_t>(c);
  c >>= 64;
  c += t2;
  out.w[2] = static_cast<std::uint64_t>(c);
  c >>= 64;
  c += t3;
  out.w[3] = static_cast<std::uint64_t>(c);
  if (static_cast<std::uint64_t>(c >> 64) != 0) {
    // Wrapped past 2^256 (possible only for t within 2^66 of it): the
    // wrapped value is tiny, so adding kC once finishes the reduction.
    u128 c2 = static_cast<u128>(out.w[0]) + kC;
    out.w[0] = static_cast<std::uint64_t>(c2);
    c2 >>= 64;
    c2 += out.w[1];
    out.w[1] = static_cast<std::uint64_t>(c2);
    c2 >>= 64;
    c2 += out.w[2];
    out.w[2] = static_cast<std::uint64_t>(c2);
    c2 >>= 64;
    out.w[3] = static_cast<std::uint64_t>(c2 + out.w[3]);
    return out;
  }
  bool ge;
  if (out.w[3] != kP.w[3]) {
    ge = out.w[3] > kP.w[3];
  } else if (out.w[2] != kP.w[2]) {
    ge = out.w[2] > kP.w[2];
  } else if (out.w[1] != kP.w[1]) {
    ge = out.w[1] > kP.w[1];
  } else {
    ge = out.w[0] >= kP.w[0];
  }
  if (ge) {
    u128 br = static_cast<u128>(out.w[0]) - kP.w[0];
    out.w[0] = static_cast<std::uint64_t>(br);
    br = (br >> 64) & 1;
    br = static_cast<u128>(out.w[1]) - kP.w[1] - static_cast<std::uint64_t>(br);
    out.w[1] = static_cast<std::uint64_t>(br);
    br = (br >> 64) & 1;
    br = static_cast<u128>(out.w[2]) - kP.w[2] - static_cast<std::uint64_t>(br);
    out.w[2] = static_cast<std::uint64_t>(br);
    br = (br >> 64) & 1;
    out.w[3] = static_cast<std::uint64_t>(
        static_cast<u128>(out.w[3]) - kP.w[3] - static_cast<std::uint64_t>(br));
  }
  return out;
}

/// Width-w wNAF digit string, least-significant first: digits are zero or
/// odd in (-2^(w-1), 2^(w-1)), and any two nonzero digits are at least w
/// apart.  `k` must be < n (so the in-place adjustments cannot overflow
/// 256 bits).  Returns the digit count (<= 258).  Width 2 is plain NAF
/// (digits +-1, no table beyond the point itself).
unsigned wnaf(U256 k, unsigned width, std::array<std::int8_t, 258>& digits) noexcept {
  const std::uint64_t mask = (1ULL << width) - 1;
  const std::uint64_t half = 1ULL << (width - 1);
  unsigned len = 0;
  while (!k.is_zero()) {
    std::int8_t d = 0;
    if (k.bit(0)) {
      const std::uint64_t low = k.w[0] & mask;
      if (low >= half) {
        d = static_cast<std::int8_t>(static_cast<int>(low) -
                                     static_cast<int>(mask + 1));
        k = U256::add(k, U256{mask + 1 - low}).first;
      } else {
        d = static_cast<std::int8_t>(low);
        k = U256::sub(k, U256{low}).first;
      }
    }
    digits[len++] = d;
    k = k.shr1();
  }
  return len;
}

/// Flip the sign of every digit: turns the wNAF of |k| into that of -|k|.
void negate_digits(std::array<std::int8_t, 258>& digits, unsigned len) noexcept {
  for (unsigned i = 0; i < len; ++i) {
    digits[i] = static_cast<std::int8_t>(-digits[i]);
  }
}

/// Odd multiples {1P, 3P, ..., 15P} in Jacobian coordinates.
std::array<JacobianPoint, 8> odd_multiples(const AffinePoint& p) noexcept {
  std::array<JacobianPoint, 8> tab;
  tab[0] = JacobianPoint::from_affine(p);
  const JacobianPoint p2 = ec_double(tab[0]);
  for (std::size_t i = 1; i < tab.size(); ++i) {
    tab[i] = ec_add(tab[i - 1], p2);
  }
  return tab;
}

/// Normalize `points` to affine with ONE field inversion (Montgomery's
/// trick); identities map to the affine identity.
void batch_normalize(const JacobianPoint* points, AffinePoint* out,
                     std::size_t count) {
  std::vector<U256> prefix(count);
  U256 running{1};
  for (std::size_t i = 0; i < count; ++i) {
    prefix[i] = running;
    if (!points[i].is_identity()) running = fp_mul(running, points[i].z);
  }
  U256 inv = running.is_zero() ? U256{} : fp_inv(running);
  for (std::size_t i = count; i-- > 0;) {
    if (points[i].is_identity()) {
      out[i] = AffinePoint::identity();
      continue;
    }
    const U256 z_inv = fp_mul(inv, prefix[i]);
    inv = fp_mul(inv, points[i].z);
    const U256 z_inv2 = fp_sqr(z_inv);
    out[i] = AffinePoint{fp_mul(points[i].x, z_inv2),
                         fp_mul(points[i].y, fp_mul(z_inv2, z_inv)), false};
  }
}

/// add-2007-bl, additionally reporting the Z-ratio: Z3 == Z1 * zr.  Used
/// to build common-Z tables without inversions.  Preconditions: neither
/// operand is the identity and p != +-q (guaranteed when chaining odd
/// multiples of a point with prime order).
JacobianPoint ec_add_zr(const JacobianPoint& p, const JacobianPoint& q,
                        U256& zr) noexcept {
  const U256 z1z1 = fp_sqr(p.z);
  const U256 z2z2 = fp_sqr(q.z);
  const U256 u1 = fp_mul(p.x, z2z2);
  const U256 u2 = fp_mul(q.x, z1z1);
  const U256 s1 = fp_mul(fp_mul(p.y, q.z), z2z2);
  const U256 s2 = fp_mul(fp_mul(q.y, p.z), z1z1);
  const U256 h = fp_sub(u2, u1);
  U256 i = fp_add(h, h);
  i = fp_sqr(i);
  const U256 j = fp_mul(h, i);
  U256 r = fp_sub(s2, s1);
  r = fp_add(r, r);
  const U256 v = fp_mul(u1, i);
  const U256 x3 = fp_sub(fp_sub(fp_sqr(r), j), fp_add(v, v));
  U256 s1j = fp_mul(s1, j);
  s1j = fp_add(s1j, s1j);
  const U256 y3 = fp_sub(fp_mul(r, fp_sub(v, x3)), s1j);
  // Z3 = 2*Z1*Z2*H, so the ratio Z3/Z1 is 2*Z2*H.
  zr = fp_mul(fp_add(q.z, q.z), h);
  return JacobianPoint{x3, y3, fp_mul(p.z, zr)};
}

/// Odd multiples {1P, 3P, ..., 15P} expressed over ONE common denominator
/// `z_common`, with no field inversion: entry i holds (X_i, Y_i) such that
/// the true point is (X_i / z_common^2, Y_i / z_common^3).  The entries
/// behave exactly like affine points under the a = 0 group law (the
/// formulas never reference the curve constant b): the walk effectively
/// runs on the isomorphic curve where z_common is 1, and the caller maps
/// the result back by multiplying its Z by z_common.  This is what turns
/// every variable-base addition in the GLV walk into a *mixed* addition.
/// Precondition: p is on the curve and not the identity.
std::array<AffinePoint, 8> odd_multiples_common_z(const AffinePoint& p,
                                                  U256& z_common) noexcept {
  std::array<JacobianPoint, 8> jac;
  std::array<U256, 8> zr;  // jac[i].z == jac[i-1].z * zr[i]
  jac[0] = JacobianPoint::from_affine(p);
  const JacobianPoint p2 = ec_double(jac[0]);
  for (std::size_t i = 1; i < jac.size(); ++i) {
    jac[i] = ec_add_zr(jac[i - 1], p2, zr[i]);
  }
  z_common = jac[7].z;
  std::array<AffinePoint, 8> out;
  out[7] = AffinePoint{jac[7].x, jac[7].y, false};
  U256 s{1};  // z_common / jac[i].z, accumulated walking backwards
  for (int i = 6; i >= 0; --i) {
    const std::size_t idx = static_cast<std::size_t>(i);
    s = fp_mul(s, zr[idx + 1]);
    const U256 s2 = fp_sqr(s);
    out[idx] = AffinePoint{fp_mul(jac[idx].x, s2),
                           fp_mul(jac[idx].y, fp_mul(s2, s)), false};
  }
  return out;
}

/// psi applied entry-wise to a (common-Z) affine table: x -> beta*x.
std::array<AffinePoint, 8> endo_table_affine(
    const std::array<AffinePoint, 8>& tab) noexcept;

/// Shared affine odd multiples {1G, 3G, ..., 15G} for the Shamir pass.
const std::array<AffinePoint, 8>& generator_odd_multiples() {
  static const std::array<AffinePoint, 8> tab = [] {
    const auto jac = odd_multiples(AffinePoint::generator());
    std::array<AffinePoint, 8> affine;
    batch_normalize(jac.data(), affine.data(), jac.size());
    return affine;
  }();
  return tab;
}

// ---- GLV internals ----

/// GLV constants: beta, lambda and the lattice basis (a1, b1), (a2, b2)
/// with b2 == a1 and a2 == a1 - b1 are the published secp256k1 values; the
/// rounding constants g1 = round(2^384*b2/n), g2 = round(2^384*(-b1)/n)
/// are DERIVED here by exact division, so a transcription error in them is
/// impossible (errors in the basis itself fail the differential sweeps).
struct GlvConsts {
  U256 lambda;    ///< cube root of 1 mod n
  U256 beta;      ///< cube root of 1 mod p
  U256 a1;        ///< == b2
  U256 minus_b1;  ///< -b1 (b1 is negative in the reduced basis)
  U256 a2;        ///< == a1 + (-b1)
  U256 g1;
  U256 g2;
  U256 half_n;
};

const GlvConsts& glv_consts() {
  static const GlvConsts consts = [] {
    GlvConsts c;
    c.lambda = U256{0xdf02967c1b23bd72ULL, 0x122e22ea20816678ULL,
                    0xa5261c028812645aULL, 0x5363ad4cc05c30e0ULL};
    c.beta = U256{0xc1396c28719501eeULL, 0x9cf0497512f58995ULL,
                  0x6e64479eac3434e9ULL, 0x7ae96a2b657c0710ULL};
    c.a1 = U256{0xe86c90e49284eb15ULL, 0x3086d221a7d46bcdULL, 0, 0};
    c.minus_b1 = U256{0x6f547fa90abfe4c3ULL, 0xe4437ed6010e8828ULL, 0, 0};
    c.a2 = U256::add(c.a1, c.minus_b1).first;
    U512 num{};  // b2 << 384
    num.w[6] = c.a1.w[0];
    num.w[7] = c.a1.w[1];
    c.g1 = div_round(num, kN);
    num = U512{};  // (-b1) << 384
    num.w[6] = c.minus_b1.w[0];
    num.w[7] = c.minus_b1.w[1];
    c.g2 = div_round(num, kN);
    c.half_n = kN.shr1();
    return c;
  }();
  return consts;
}

/// round(a * b / 2^384): the only multi-precision step of the split.
U256 mul_shift_384(const U256& a, const U256& b) noexcept {
  const U512 prod = U256::mul_wide(a, b);
  U256 q{prod.w[6], prod.w[7], 0, 0};
  if (prod.w[5] >> 63) q = U256::add(q, U256{1}).first;
  return q;
}

/// psi applied entry-wise to a Jacobian table: (X, Y, Z) -> (beta*X, Y, Z),
/// since x = X/Z^2 maps to beta*X/Z^2.
std::array<JacobianPoint, 8> endo_table(
    const std::array<JacobianPoint, 8>& tab) noexcept {
  const U256& beta = glv_consts().beta;
  std::array<JacobianPoint, 8> out;
  for (std::size_t i = 0; i < tab.size(); ++i) {
    out[i] = tab[i].is_identity()
                 ? tab[i]
                 : JacobianPoint{fp_mul(tab[i].x, beta), tab[i].y, tab[i].z};
  }
  return out;
}

std::array<AffinePoint, 8> endo_table_affine(
    const std::array<AffinePoint, 8>& tab) noexcept {
  const U256& beta = glv_consts().beta;
  std::array<AffinePoint, 8> out;
  for (std::size_t i = 0; i < tab.size(); ++i) {
    out[i] = tab[i].infinity
                 ? tab[i]
                 : AffinePoint{fp_mul(tab[i].x, beta), tab[i].y, false};
  }
  return out;
}

/// Static width-8 tables {1, 3, ..., 127} * G and psi of each: the G-side
/// streams of every GLV verification walk these (64 + 64 affine points,
/// ~8 KB, built once per process).  Width 8 is the int8_t digit ceiling.
constexpr unsigned kGlvGenWidth = 8;
constexpr unsigned kGlvGenEntries = 1u << (kGlvGenWidth - 2);

struct GlvGenTables {
  std::array<AffinePoint, kGlvGenEntries> g;
  std::array<AffinePoint, kGlvGenEntries> psi;
};

const GlvGenTables& glv_generator_tables() {
  static const GlvGenTables tabs = [] {
    std::vector<JacobianPoint> jac(kGlvGenEntries);
    jac[0] = JacobianPoint::from_affine(AffinePoint::generator());
    const JacobianPoint g2 = ec_double(jac[0]);
    for (std::size_t i = 1; i < jac.size(); ++i) {
      jac[i] = ec_add(jac[i - 1], g2);
    }
    GlvGenTables t;
    batch_normalize(jac.data(), t.g.data(), jac.size());
    for (std::size_t i = 0; i < t.g.size(); ++i) {
      t.psi[i] = ec_endomorphism(t.g[i]);
    }
    return t;
  }();
  return tabs;
}

/// One signed-wNAF digit stream over a table of odd multiples (affine ->
/// mixed additions, Jacobian -> full additions).
struct DigitStreamA {
  const AffinePoint* tab;
  const std::array<std::int8_t, 258>* d;
  unsigned len;
  /// When set, entries are lifted onto the iso-curve of a common-Z table
  /// sharing the walk: (x, y) -> (x * lift_z2, y * lift_z3) where the
  /// lifts are z_common^2 and z_common^3.  Two extra multiplications per
  /// addition — far cheaper than full Jacobian adds for the other streams.
  const U256* lift_z2 = nullptr;
  const U256* lift_z3 = nullptr;
};
struct DigitStreamJ {
  const JacobianPoint* tab;
  const std::array<std::int8_t, 258>* d;
  unsigned len;
};

/// The shared Strauss walk: ONE doubling chain as long as the longest
/// stream, every stream contributing its digit additions along the way.
JacobianPoint wnaf_walk(const DigitStreamA* as, std::size_t na,
                        const DigitStreamJ* js, std::size_t nj) noexcept {
  unsigned len = 0;
  for (std::size_t s = 0; s < na; ++s) len = std::max(len, as[s].len);
  for (std::size_t s = 0; s < nj; ++s) len = std::max(len, js[s].len);
  JacobianPoint acc = JacobianPoint::identity();
  for (int i = static_cast<int>(len) - 1; i >= 0; --i) {
    acc = ec_double(acc);
    const std::size_t idx = static_cast<std::size_t>(i);
    for (std::size_t s = 0; s < na; ++s) {
      if (idx >= as[s].len) continue;
      const int d = (*as[s].d)[idx];
      if (d == 0) continue;
      AffinePoint e = as[s].tab[static_cast<std::size_t>((std::abs(d) - 1) / 2)];
      if (as[s].lift_z2 != nullptr) {
        e = AffinePoint{fp_mul(e.x, *as[s].lift_z2),
                        fp_mul(e.y, *as[s].lift_z3), false};
      }
      acc = ec_add_mixed(acc, d > 0 ? e : ec_negate(e));
    }
    for (std::size_t s = 0; s < nj; ++s) {
      if (idx >= js[s].len) continue;
      const int d = (*js[s].d)[idx];
      if (d > 0) {
        acc = ec_add(acc, js[s].tab[static_cast<std::size_t>((d - 1) / 2)]);
      } else if (d < 0) {
        acc = ec_add(acc,
                     ec_negate(js[s].tab[static_cast<std::size_t>((-d - 1) / 2)]));
      }
    }
  }
  return acc;
}

/// Below this many short terms, independent NAF streams on the shared
/// doubling chain are cheaper than Bos–Coster's full Jacobian additions
/// (mixed adds win until the ~b/lg N step count pulls ahead).
constexpr std::size_t kBosCosterMin = 16;

/// Sum of k_i * P_i for nonzero 64-bit scalars by Bos–Coster reduction:
/// pop the two largest terms (k1, P1) >= (k2, P2) and replace them with
/// (k1 - k2, P1), (k2, P1 + P2) — one point addition per step, no
/// doubling chain and no recoding.  Uniform 64-bit coefficients (the
/// batch-verification z's) settle in ~b/lg N additions per term: ~12 at
/// N = 64 against ~22 for independent width-2 NAF streams.  A ratio
/// guard peels degenerate stragglers (k1 >= 32 k2) by double-and-add so
/// a skewed scalar spread cannot blow up the step count.
JacobianPoint bos_coster(
    std::vector<std::pair<std::uint64_t, JacobianPoint>> terms) noexcept {
  JacobianPoint acc = JacobianPoint::identity();
  const auto peel = [&acc](std::uint64_t k, const JacobianPoint& p) {
    JacobianPoint r = JacobianPoint::identity();
    for (int b = 63 - std::countl_zero(k); b >= 0; --b) {
      r = ec_double(r);
      if ((k >> b) & 1) r = ec_add(r, p);
    }
    acc = ec_add(acc, r);
  };
  std::vector<std::pair<std::uint64_t, std::uint32_t>> entries;
  entries.reserve(terms.size());
  for (std::uint32_t i = 0; i < terms.size(); ++i) {
    entries.emplace_back(terms[i].first, i);
  }
  // Heapify in O(n) instead of n log-pushes.
  std::priority_queue<std::pair<std::uint64_t, std::uint32_t>> heap(
      std::less<std::pair<std::uint64_t, std::uint32_t>>{}, std::move(entries));
  while (!heap.empty()) {
    const auto [k1, i1] = heap.top();
    heap.pop();
    if (heap.empty()) {
      peel(k1, terms[i1].second);
      break;
    }
    const auto [k2, i2] = heap.top();
    if (k1 / k2 >= 32) {
      peel(k1, terms[i1].second);
      continue;
    }
    // (k2, i2) stays in the heap untouched — its key does not change, only
    // the point behind i2, so a peek (no pop/re-push) suffices.
    terms[i2].second = ec_add(terms[i2].second, terms[i1].second);
    if (k1 - k2 != 0) heap.emplace(k1 - k2, i1);
  }
  return acc;
}

}  // namespace

const U256& Secp256k1::p() noexcept { return kP; }
const U256& Secp256k1::n() noexcept { return kN; }
const U256& Secp256k1::gx() noexcept { return kGx; }
const U256& Secp256k1::gy() noexcept { return kGy; }

U256 fp_add(const U256& a, const U256& b) noexcept {
  U256 out;
  u128 c = static_cast<u128>(a.w[0]) + b.w[0];
  out.w[0] = static_cast<std::uint64_t>(c);
  c >>= 64;
  c += static_cast<u128>(a.w[1]) + b.w[1];
  out.w[1] = static_cast<std::uint64_t>(c);
  c >>= 64;
  c += static_cast<u128>(a.w[2]) + b.w[2];
  out.w[2] = static_cast<std::uint64_t>(c);
  c >>= 64;
  c += static_cast<u128>(a.w[3]) + b.w[3];
  out.w[3] = static_cast<std::uint64_t>(c);
  bool ge = static_cast<std::uint64_t>(c >> 64) != 0;
  if (!ge) {
    if (out.w[3] != kP.w[3]) {
      ge = out.w[3] > kP.w[3];
    } else if (out.w[2] != kP.w[2]) {
      ge = out.w[2] > kP.w[2];
    } else if (out.w[1] != kP.w[1]) {
      ge = out.w[1] > kP.w[1];
    } else {
      ge = out.w[0] >= kP.w[0];
    }
  }
  if (ge) {
    u128 br = static_cast<u128>(out.w[0]) - kP.w[0];
    out.w[0] = static_cast<std::uint64_t>(br);
    br = (br >> 64) & 1;
    br = static_cast<u128>(out.w[1]) - kP.w[1] - static_cast<std::uint64_t>(br);
    out.w[1] = static_cast<std::uint64_t>(br);
    br = (br >> 64) & 1;
    br = static_cast<u128>(out.w[2]) - kP.w[2] - static_cast<std::uint64_t>(br);
    out.w[2] = static_cast<std::uint64_t>(br);
    br = (br >> 64) & 1;
    out.w[3] = static_cast<std::uint64_t>(
        static_cast<u128>(out.w[3]) - kP.w[3] - static_cast<std::uint64_t>(br));
  }
  return out;
}

U256 fp_sub(const U256& a, const U256& b) noexcept {
  U256 out;
  u128 br = static_cast<u128>(a.w[0]) - b.w[0];
  out.w[0] = static_cast<std::uint64_t>(br);
  br = (br >> 64) & 1;
  br = static_cast<u128>(a.w[1]) - b.w[1] - static_cast<std::uint64_t>(br);
  out.w[1] = static_cast<std::uint64_t>(br);
  br = (br >> 64) & 1;
  br = static_cast<u128>(a.w[2]) - b.w[2] - static_cast<std::uint64_t>(br);
  out.w[2] = static_cast<std::uint64_t>(br);
  br = (br >> 64) & 1;
  br = static_cast<u128>(a.w[3]) - b.w[3] - static_cast<std::uint64_t>(br);
  out.w[3] = static_cast<std::uint64_t>(br);
  if (((br >> 64) & 1) != 0) {
    u128 c = static_cast<u128>(out.w[0]) + kP.w[0];
    out.w[0] = static_cast<std::uint64_t>(c);
    c >>= 64;
    c += static_cast<u128>(out.w[1]) + kP.w[1];
    out.w[1] = static_cast<std::uint64_t>(c);
    c >>= 64;
    c += static_cast<u128>(out.w[2]) + kP.w[2];
    out.w[2] = static_cast<std::uint64_t>(c);
    c >>= 64;
    out.w[3] = static_cast<std::uint64_t>(c + out.w[3] + kP.w[3]);
  }
  return out;
}

U256 fp_mul(const U256& a, const U256& b) noexcept {
  const std::uint64_t a0 = a.w[0], a1 = a.w[1], a2 = a.w[2], a3 = a.w[3];
  const std::uint64_t b0 = b.w[0], b1 = b.w[1], b2 = b.w[2], b3 = b.w[3];
  std::uint64_t r0, r1, r2, r3, r4, r5, r6, r7;
  u128 c = static_cast<u128>(a0) * b0;
  r0 = static_cast<std::uint64_t>(c);
  c >>= 64;
  c += static_cast<u128>(a0) * b1;
  std::uint64_t t1 = static_cast<std::uint64_t>(c);
  c >>= 64;
  c += static_cast<u128>(a0) * b2;
  std::uint64_t t2 = static_cast<std::uint64_t>(c);
  c >>= 64;
  c += static_cast<u128>(a0) * b3;
  std::uint64_t t3 = static_cast<std::uint64_t>(c);
  std::uint64_t t4 = static_cast<std::uint64_t>(c >> 64);

  c = static_cast<u128>(t1) + static_cast<u128>(a1) * b0;
  r1 = static_cast<std::uint64_t>(c);
  c >>= 64;
  c += static_cast<u128>(t2) + static_cast<u128>(a1) * b1;
  t2 = static_cast<std::uint64_t>(c);
  c >>= 64;
  c += static_cast<u128>(t3) + static_cast<u128>(a1) * b2;
  t3 = static_cast<std::uint64_t>(c);
  c >>= 64;
  c += static_cast<u128>(t4) + static_cast<u128>(a1) * b3;
  t4 = static_cast<std::uint64_t>(c);
  std::uint64_t t5 = static_cast<std::uint64_t>(c >> 64);

  c = static_cast<u128>(t2) + static_cast<u128>(a2) * b0;
  r2 = static_cast<std::uint64_t>(c);
  c >>= 64;
  c += static_cast<u128>(t3) + static_cast<u128>(a2) * b1;
  t3 = static_cast<std::uint64_t>(c);
  c >>= 64;
  c += static_cast<u128>(t4) + static_cast<u128>(a2) * b2;
  t4 = static_cast<std::uint64_t>(c);
  c >>= 64;
  c += static_cast<u128>(t5) + static_cast<u128>(a2) * b3;
  t5 = static_cast<std::uint64_t>(c);
  std::uint64_t t6 = static_cast<std::uint64_t>(c >> 64);

  c = static_cast<u128>(t3) + static_cast<u128>(a3) * b0;
  r3 = static_cast<std::uint64_t>(c);
  c >>= 64;
  c += static_cast<u128>(t4) + static_cast<u128>(a3) * b1;
  r4 = static_cast<std::uint64_t>(c);
  c >>= 64;
  c += static_cast<u128>(t5) + static_cast<u128>(a3) * b2;
  r5 = static_cast<std::uint64_t>(c);
  c >>= 64;
  c += static_cast<u128>(t6) + static_cast<u128>(a3) * b3;
  r6 = static_cast<std::uint64_t>(c);
  r7 = static_cast<std::uint64_t>(c >> 64);
  return fp_from_wide(r0, r1, r2, r3, r4, r5, r6, r7);
}

U256 fp_sqr(const U256& a) noexcept {
  const std::uint64_t a0 = a.w[0], a1 = a.w[1], a2 = a.w[2], a3 = a.w[3];
  // Off-diagonal columns (each product once): d1..d6 hold columns 1..6.
  u128 c = static_cast<u128>(a0) * a1;
  std::uint64_t d1 = static_cast<std::uint64_t>(c);
  c >>= 64;
  c += static_cast<u128>(a0) * a2;
  std::uint64_t d2 = static_cast<std::uint64_t>(c);
  c >>= 64;
  // Column 3 has two products; accumulate them with separate carries so
  // the u128 cannot overflow.
  c += static_cast<u128>(a0) * a3;
  std::uint64_t d3 = static_cast<std::uint64_t>(c);
  c >>= 64;
  u128 c2 = static_cast<u128>(d3) + static_cast<u128>(a1) * a2;
  d3 = static_cast<std::uint64_t>(c2);
  c += c2 >> 64;
  c += static_cast<u128>(a1) * a3;
  std::uint64_t d4 = static_cast<std::uint64_t>(c);
  c >>= 64;
  c += static_cast<u128>(a2) * a3;
  std::uint64_t d5 = static_cast<std::uint64_t>(c);
  std::uint64_t d6 = static_cast<std::uint64_t>(c >> 64);

  // r = 2 * offdiag + diagonals.
  std::uint64_t r0, r1, r2, r3, r4, r5, r6, r7;
  const std::uint64_t e1 = d1 << 1;
  const std::uint64_t e2 = (d2 << 1) | (d1 >> 63);
  const std::uint64_t e3 = (d3 << 1) | (d2 >> 63);
  const std::uint64_t e4 = (d4 << 1) | (d3 >> 63);
  const std::uint64_t e5 = (d5 << 1) | (d4 >> 63);
  const std::uint64_t e6 = (d6 << 1) | (d5 >> 63);
  const std::uint64_t e7 = d6 >> 63;

  u128 s = static_cast<u128>(a0) * a0;
  r0 = static_cast<std::uint64_t>(s);
  s >>= 64;
  s += e1;
  r1 = static_cast<std::uint64_t>(s);
  s >>= 64;
  s += static_cast<u128>(a1) * a1 + e2;
  r2 = static_cast<std::uint64_t>(s);
  s >>= 64;
  s += e3;
  r3 = static_cast<std::uint64_t>(s);
  s >>= 64;
  s += static_cast<u128>(a2) * a2 + e4;
  r4 = static_cast<std::uint64_t>(s);
  s >>= 64;
  s += e5;
  r5 = static_cast<std::uint64_t>(s);
  s >>= 64;
  s += static_cast<u128>(a3) * a3 + e6;
  r6 = static_cast<std::uint64_t>(s);
  s >>= 64;
  r7 = static_cast<std::uint64_t>(s + e7);
  return fp_from_wide(r0, r1, r2, r3, r4, r5, r6, r7);
}

U256 fp_inv(const U256& a) noexcept {
  // Fermat: a^(p-2).  Square-and-multiply with the fast field multiply.
  const U256 e = U256::sub(kP, U256{2}).first;
  U256 result{1};
  const unsigned bits = e.bit_length();
  for (int i = static_cast<int>(bits) - 1; i >= 0; --i) {
    result = fp_sqr(result);
    if (e.bit(static_cast<unsigned>(i))) result = fp_mul(result, a);
  }
  return result;
}

U256 sn_reduce(const U512& x) noexcept {
  // Fold x = H*2^256 + L ==> L + H*kNC until the high half vanishes.
  // kNC is 129 bits, so every fold shrinks the value by ~127 bits; the
  // loop runs at most five times for a full 512-bit input.
  std::array<std::uint64_t, 8> t = x.w;
  while (t[4] | t[5] | t[6] | t[7]) {
    const std::array<std::uint64_t, 4> hi{t[4], t[5], t[6], t[7]};
    std::array<std::uint64_t, 8> acc{t[0], t[1], t[2], t[3], 0, 0, 0, 0};
    for (std::size_t i = 0; i < 4; ++i) {
      if (hi[i] == 0) continue;  // 320-bit inputs skip 3 of 4 limb rows
      u128 carry = 0;
      for (std::size_t j = 0; j < 3; ++j) {
        const u128 cur =
            acc[i + j] + static_cast<u128>(hi[i]) * kNC[j] + carry;
        acc[i + j] = static_cast<std::uint64_t>(cur);
        carry = cur >> 64;
      }
      for (std::size_t k = i + 3; carry != 0 && k < 8; ++k) {
        const u128 cur = acc[k] + carry;
        acc[k] = static_cast<std::uint64_t>(cur);
        carry = cur >> 64;
      }
    }
    t = acc;
  }
  U256 r{t[0], t[1], t[2], t[3]};
  while (U256::cmp(r, kN) >= 0) r = U256::sub(r, kN).first;
  return r;
}

U256 sn_reduce(const U256& x) noexcept {
  // x < 2^256 < 2n, so one conditional subtraction suffices.
  return U256::cmp(x, kN) >= 0 ? U256::sub(x, kN).first : x;
}

U256 sn_add(const U256& a, const U256& b) noexcept {
  return add_mod(a, b, kN);
}

U256 sn_sub(const U256& a, const U256& b) noexcept {
  return sub_mod(a, b, kN);
}

U256 sn_mul(const U256& a, const U256& b) noexcept {
  if ((b.w[1] | b.w[2] | b.w[3]) == 0) {
    // 256 x 64 (the batch RLC coefficients): four products instead of the
    // full school-book multiply.
    const std::uint64_t k = b.w[0];
    U512 p{};
    u128 c = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      c += static_cast<u128>(a.w[i]) * k;
      p.w[i] = static_cast<std::uint64_t>(c);
      c >>= 64;
    }
    p.w[4] = static_cast<std::uint64_t>(c);
    return sn_reduce(p);
  }
  return sn_reduce(U256::mul_wide(a, b));
}

bool AffinePoint::on_curve() const noexcept {
  if (infinity) return true;
  // y^2 == x^3 + 7.
  const U256 lhs = fp_sqr(y);
  const U256 rhs = fp_add(fp_mul(fp_sqr(x), x), U256{7});
  return lhs == rhs;
}

AffinePoint AffinePoint::generator() noexcept {
  return AffinePoint{kGx, kGy, false};
}

JacobianPoint JacobianPoint::from_affine(const AffinePoint& p) noexcept {
  if (p.infinity) return identity();
  return JacobianPoint{p.x, p.y, U256{1}};
}

AffinePoint JacobianPoint::to_affine() const noexcept {
  if (is_identity()) return AffinePoint::identity();
  const U256 z_inv = fp_inv(z);
  const U256 z_inv2 = fp_sqr(z_inv);
  const U256 z_inv3 = fp_mul(z_inv2, z_inv);
  return AffinePoint{fp_mul(x, z_inv2), fp_mul(y, z_inv3), false};
}

JacobianPoint ec_double(const JacobianPoint& p) noexcept {
  if (p.is_identity() || p.y.is_zero()) return JacobianPoint::identity();
  // dbl-2009-l formulas for a = 0.
  const U256 a = fp_sqr(p.x);                       // A = X^2
  const U256 b = fp_sqr(p.y);                       // B = Y^2
  const U256 c = fp_sqr(b);                         // C = B^2
  U256 d = fp_sub(fp_sqr(fp_add(p.x, b)), fp_add(a, c));
  d = fp_add(d, d);                                 // D = 2((X+B)^2 - A - C)
  const U256 e = fp_add(fp_add(a, a), a);           // E = 3A
  const U256 f = fp_sqr(e);                         // F = E^2
  const U256 x3 = fp_sub(f, fp_add(d, d));          // X3 = F - 2D
  U256 c8 = fp_add(c, c);
  c8 = fp_add(c8, c8);
  c8 = fp_add(c8, c8);                              // 8C
  const U256 y3 = fp_sub(fp_mul(e, fp_sub(d, x3)), c8);
  const U256 yz = fp_mul(p.y, p.z);
  const U256 z3 = fp_add(yz, yz);                   // Z3 = 2YZ
  return JacobianPoint{x3, y3, z3};
}

JacobianPoint ec_add(const JacobianPoint& p, const JacobianPoint& q) noexcept {
  if (p.is_identity()) return q;
  if (q.is_identity()) return p;
  // An affine operand (Z == 1) takes the cheaper mixed formulas — common
  // when freshly-lifted points feed a reduction (Bos–Coster sources).
  const U256 one{1};
  if (q.z == one) return ec_add_mixed(p, AffinePoint{q.x, q.y, false});
  if (p.z == one) return ec_add_mixed(q, AffinePoint{p.x, p.y, false});
  // add-2007-bl formulas.
  const U256 z1z1 = fp_sqr(p.z);
  const U256 z2z2 = fp_sqr(q.z);
  const U256 u1 = fp_mul(p.x, z2z2);
  const U256 u2 = fp_mul(q.x, z1z1);
  const U256 s1 = fp_mul(fp_mul(p.y, q.z), z2z2);
  const U256 s2 = fp_mul(fp_mul(q.y, p.z), z1z1);
  if (u1 == u2) {
    if (s1 == s2) return ec_double(p);
    return JacobianPoint::identity();  // P + (-P)
  }
  const U256 h = fp_sub(u2, u1);
  U256 i = fp_add(h, h);
  i = fp_sqr(i);                                    // I = (2H)^2
  const U256 j = fp_mul(h, i);
  U256 r = fp_sub(s2, s1);
  r = fp_add(r, r);                                 // r = 2(S2 - S1)
  const U256 v = fp_mul(u1, i);
  const U256 x3 = fp_sub(fp_sub(fp_sqr(r), j), fp_add(v, v));
  U256 s1j = fp_mul(s1, j);
  s1j = fp_add(s1j, s1j);
  const U256 y3 = fp_sub(fp_mul(r, fp_sub(v, x3)), s1j);
  // Z3 = ((Z1+Z2)^2 - Z1Z1 - Z2Z2) * H.
  const U256 z3 = fp_mul(
      fp_sub(fp_sqr(fp_add(p.z, q.z)), fp_add(z1z1, z2z2)), h);
  return JacobianPoint{x3, y3, z3};
}

JacobianPoint ec_add_mixed(const JacobianPoint& p, const AffinePoint& q) noexcept {
  if (q.infinity) return p;
  if (p.is_identity()) return JacobianPoint::from_affine(q);
  // madd-2007-bl formulas (Z2 = 1).
  const U256 z1z1 = fp_sqr(p.z);
  const U256 u2 = fp_mul(q.x, z1z1);
  const U256 s2 = fp_mul(fp_mul(q.y, p.z), z1z1);
  if (u2 == p.x) {
    if (s2 == p.y) return ec_double(p);
    return JacobianPoint::identity();  // P + (-P)
  }
  const U256 h = fp_sub(u2, p.x);
  const U256 hh = fp_sqr(h);
  U256 i = fp_add(hh, hh);
  i = fp_add(i, i);                                 // I = 4HH
  const U256 j = fp_mul(h, i);
  U256 r = fp_sub(s2, p.y);
  r = fp_add(r, r);                                 // r = 2(S2 - Y1)
  const U256 v = fp_mul(p.x, i);
  const U256 x3 = fp_sub(fp_sub(fp_sqr(r), j), fp_add(v, v));
  U256 yj = fp_mul(p.y, j);
  yj = fp_add(yj, yj);
  const U256 y3 = fp_sub(fp_mul(r, fp_sub(v, x3)), yj);
  // Z3 = (Z1 + H)^2 - Z1Z1 - HH.
  const U256 z3 = fp_sub(fp_sub(fp_sqr(fp_add(p.z, h)), z1z1), hh);
  return JacobianPoint{x3, y3, z3};
}

JacobianPoint ec_mul(const U256& k, const AffinePoint& p) noexcept {
  if (p.infinity) return JacobianPoint::identity();
  const U256 kr = sn_reduce(k);
  if (kr.is_zero()) return JacobianPoint::identity();
  const std::array<JacobianPoint, 8> tab = odd_multiples(p);
  std::array<std::int8_t, 258> digits;
  const unsigned len = wnaf(kr, 5, digits);
  JacobianPoint acc = JacobianPoint::identity();
  for (int i = static_cast<int>(len) - 1; i >= 0; --i) {
    acc = ec_double(acc);
    const int d = digits[static_cast<std::size_t>(i)];
    if (d > 0) {
      acc = ec_add(acc, tab[static_cast<std::size_t>((d - 1) / 2)]);
    } else if (d < 0) {
      acc = ec_add(acc, ec_negate(tab[static_cast<std::size_t>((-d - 1) / 2)]));
    }
  }
  return acc;
}

JacobianPoint ec_mul_naive(const U256& k, const AffinePoint& p) noexcept {
  JacobianPoint acc = JacobianPoint::identity();
  const JacobianPoint base = JacobianPoint::from_affine(p);
  const unsigned bits = k.bit_length();
  for (int i = static_cast<int>(bits) - 1; i >= 0; --i) {
    acc = ec_double(acc);
    if (k.bit(static_cast<unsigned>(i))) acc = ec_add(acc, base);
  }
  return acc;
}

FixedBaseTable::FixedBaseTable(const AffinePoint& base) : base_(base) {
  // Row i holds {1, 2, ..., 15} * (16^i * base) in Jacobian form; one
  // batch normalization turns all 960 points affine with a single
  // inversion.
  std::vector<JacobianPoint> jac(kWindows * kEntries);
  JacobianPoint window_base = JacobianPoint::from_affine(base);
  for (unsigned i = 0; i < kWindows; ++i) {
    JacobianPoint cur = window_base;
    for (unsigned j = 0; j < kEntries; ++j) {
      jac[i * kEntries + j] = cur;
      cur = ec_add(cur, window_base);
    }
    window_base = cur;  // 16^(i+1) * base
  }
  std::vector<AffinePoint> affine(jac.size());
  batch_normalize(jac.data(), affine.data(), jac.size());
  for (unsigned i = 0; i < kWindows; ++i) {
    for (unsigned j = 0; j < kEntries; ++j) {
      table_[i][j] = affine[i * kEntries + j];
    }
  }
}

JacobianPoint FixedBaseTable::mul(const U256& k) const noexcept {
  const U256 kr = sn_reduce(k);
  JacobianPoint acc = JacobianPoint::identity();
  for (unsigned i = 0; i < kWindows; ++i) {
    const unsigned window =
        static_cast<unsigned>(kr.w[i / 16] >> ((i % 16) * kWindowBits)) & 0xfu;
    if (window != 0) acc = ec_add_mixed(acc, table_[i][window - 1]);
  }
  return acc;
}

const FixedBaseTable& FixedBaseTable::generator() {
  static const FixedBaseTable table(AffinePoint::generator());
  return table;
}

JacobianPoint ec_mul_base(const U256& k) noexcept {
  return FixedBaseTable::generator().mul(k);
}

JacobianPoint ec_mul_add(const U256& a, const U256& b,
                         const AffinePoint& p) noexcept {
  if (p.infinity || sn_reduce(b).is_zero()) return ec_mul_base(a);
  const U256 ar = sn_reduce(a);
  const U256 br = sn_reduce(b);
  if (ar.is_zero()) return ec_mul(br, p);

  const std::array<AffinePoint, 8>& g_tab = generator_odd_multiples();
  const std::array<JacobianPoint, 8> p_tab = odd_multiples(p);
  std::array<std::int8_t, 258> da;
  std::array<std::int8_t, 258> db;
  const unsigned la = wnaf(ar, 5, da);
  const unsigned lb = wnaf(br, 5, db);
  const unsigned len = la > lb ? la : lb;

  JacobianPoint acc = JacobianPoint::identity();
  for (int i = static_cast<int>(len) - 1; i >= 0; --i) {
    acc = ec_double(acc);
    const std::size_t idx = static_cast<std::size_t>(i);
    if (idx < la && da[idx] != 0) {
      const int d = da[idx];
      acc = d > 0 ? ec_add_mixed(acc, g_tab[static_cast<std::size_t>((d - 1) / 2)])
                  : ec_add_mixed(
                        acc, ec_negate(g_tab[static_cast<std::size_t>((-d - 1) / 2)]));
    }
    if (idx < lb && db[idx] != 0) {
      const int d = db[idx];
      acc = d > 0 ? ec_add(acc, p_tab[static_cast<std::size_t>((d - 1) / 2)])
                  : ec_add(acc,
                           ec_negate(p_tab[static_cast<std::size_t>((-d - 1) / 2)]));
    }
  }
  return acc;
}

JacobianPoint ec_mul_add(const U256& a, const U256& b,
                         const FixedBaseTable& p_table) noexcept {
  // No doubling chain: both bases are comb tables, so the whole sum is a
  // sequence of mixed additions into one accumulator.
  const U256 ar = sn_reduce(a);
  const U256 br = sn_reduce(b);
  JacobianPoint acc = JacobianPoint::identity();
  const FixedBaseTable& g_table = FixedBaseTable::generator();
  for (unsigned i = 0; i < FixedBaseTable::kWindows; ++i) {
    const unsigned shift = (i % 16) * FixedBaseTable::kWindowBits;
    const unsigned wa = static_cast<unsigned>(ar.w[i / 16] >> shift) & 0xfu;
    const unsigned wb = static_cast<unsigned>(br.w[i / 16] >> shift) & 0xfu;
    if (wa != 0) acc = ec_add_mixed(acc, g_table.table_[i][wa - 1]);
    if (wb != 0) acc = ec_add_mixed(acc, p_table.table_[i][wb - 1]);
  }
  return acc;
}

bool ec_equals_affine(const JacobianPoint& p, const AffinePoint& q) noexcept {
  if (p.is_identity()) return q.infinity;
  if (q.infinity) return false;
  // X/Z^2 == qx  and  Y/Z^3 == qy, cross-multiplied.
  const U256 z2 = fp_sqr(p.z);
  if (p.x != fp_mul(q.x, z2)) return false;
  return p.y == fp_mul(q.y, fp_mul(z2, p.z));
}

AffinePoint ec_negate(const AffinePoint& p) noexcept {
  if (p.infinity) return p;
  return AffinePoint{p.x, fp_sub(U256{}, p.y), false};
}

JacobianPoint ec_negate(const JacobianPoint& p) noexcept {
  if (p.is_identity()) return p;
  return JacobianPoint{p.x, fp_sub(U256{}, p.y), p.z};
}

bool ec_equals(const JacobianPoint& p, const JacobianPoint& q) noexcept {
  if (p.is_identity() || q.is_identity()) {
    return p.is_identity() == q.is_identity();
  }
  // X1/Z1^2 == X2/Z2^2 and Y1/Z1^3 == Y2/Z2^3, cross-multiplied.
  const U256 z1z1 = fp_sqr(p.z);
  const U256 z2z2 = fp_sqr(q.z);
  if (fp_mul(p.x, z2z2) != fp_mul(q.x, z1z1)) return false;
  return fp_mul(p.y, fp_mul(z2z2, q.z)) == fp_mul(q.y, fp_mul(z1z1, p.z));
}

// ---- GLV ----

const U256& Glv::lambda() noexcept { return glv_consts().lambda; }
const U256& Glv::beta() noexcept { return glv_consts().beta; }

GlvSplit glv_split(const U256& k) noexcept {
  const GlvConsts& c = glv_consts();
  // Babai rounding: c1 ~ b2*k/n, c2 ~ -b1*k/n, then
  //   k1 = k - c1*a1 - c2*a2,  k2 = -c1*b1 - c2*b2   (mod n),
  // both guaranteed ~sqrt(n) by the basis reduction (+-2 rounding slack).
  const U256 c1 = mul_shift_384(k, c.g1);
  const U256 c2 = mul_shift_384(k, c.g2);
  U256 k1 = sn_sub(k, sn_add(sn_mul(c1, c.a1), sn_mul(c2, c.a2)));
  U256 k2 = sn_sub(sn_mul(c1, c.minus_b1), sn_mul(c2, c.a1));
  GlvSplit out;
  out.neg1 = U256::cmp(k1, c.half_n) > 0;
  out.k1 = out.neg1 ? U256::sub(kN, k1).first : k1;
  out.neg2 = U256::cmp(k2, c.half_n) > 0;
  out.k2 = out.neg2 ? U256::sub(kN, k2).first : k2;
  return out;
}

AffinePoint ec_endomorphism(const AffinePoint& p) noexcept {
  if (p.infinity) return p;
  return AffinePoint{fp_mul(p.x, glv_consts().beta), p.y, false};
}

JacobianPoint ec_mul_glv(const U256& k, const AffinePoint& p) noexcept {
  if (p.infinity) return JacobianPoint::identity();
  const U256 kr = sn_reduce(k);
  if (kr.is_zero()) return JacobianPoint::identity();
  const GlvSplit s = glv_split(kr);
  U256 zc;
  const std::array<AffinePoint, 8> ptab = odd_multiples_common_z(p, zc);
  const std::array<AffinePoint, 8> psitab = endo_table_affine(ptab);
  std::array<std::int8_t, 258> d1;
  std::array<std::int8_t, 258> d2;
  const unsigned l1 = wnaf(s.k1, 5, d1);
  const unsigned l2 = wnaf(s.k2, 5, d2);
  if (s.neg1) negate_digits(d1, l1);
  if (s.neg2) negate_digits(d2, l2);
  const DigitStreamA as[2] = {{ptab.data(), &d1, l1},
                              {psitab.data(), &d2, l2}};
  JacobianPoint acc = wnaf_walk(as, 2, nullptr, 0);
  acc.z = fp_mul(acc.z, zc);  // leave the iso-curve (identity: z stays 0)
  return acc;
}

JacobianPoint ec_mul_add_glv(const U256& a, const U256& b,
                             const AffinePoint& p) noexcept {
  if (p.infinity || sn_reduce(b).is_zero()) return ec_mul_base(a);
  const U256 ar = sn_reduce(a);
  const U256 br = sn_reduce(b);
  if (ar.is_zero()) return ec_mul_glv(br, p);

  const GlvGenTables& gt = glv_generator_tables();
  const GlvSplit sa = glv_split(ar);
  const GlvSplit sb = glv_split(br);
  U256 zc;
  const std::array<AffinePoint, 8> ptab = odd_multiples_common_z(p, zc);
  const std::array<AffinePoint, 8> psitab = endo_table_affine(ptab);
  const U256 zc2 = fp_sqr(zc);
  const U256 zc3 = fp_mul(zc2, zc);
  std::array<std::int8_t, 258> da1;
  std::array<std::int8_t, 258> da2;
  std::array<std::int8_t, 258> db1;
  std::array<std::int8_t, 258> db2;
  const unsigned la1 = wnaf(sa.k1, kGlvGenWidth, da1);
  const unsigned la2 = wnaf(sa.k2, kGlvGenWidth, da2);
  const unsigned lb1 = wnaf(sb.k1, 5, db1);
  const unsigned lb2 = wnaf(sb.k2, 5, db2);
  if (sa.neg1) negate_digits(da1, la1);
  if (sa.neg2) negate_digits(da2, la2);
  if (sb.neg1) negate_digits(db1, lb1);
  if (sb.neg2) negate_digits(db2, lb2);
  // The P table carries a common denominator; the static G tables are
  // lifted onto the same iso-curve digit-by-digit (+2 muls per addition),
  // so every addition on the chain is mixed.
  const DigitStreamA as[4] = {{gt.g.data(), &da1, la1, &zc2, &zc3},
                              {gt.psi.data(), &da2, la2, &zc2, &zc3},
                              {ptab.data(), &db1, lb1},
                              {psitab.data(), &db2, lb2}};
  JacobianPoint acc = wnaf_walk(as, 4, nullptr, 0);
  acc.z = fp_mul(acc.z, zc);  // leave the iso-curve (identity: z stays 0)
  return acc;
}

GlvTable::GlvTable(const AffinePoint& base) : base_(base) {
  const std::array<JacobianPoint, 8> jac = odd_multiples(base);
  batch_normalize(jac.data(), tab_.data(), jac.size());
  for (std::size_t i = 0; i < tab_.size(); ++i) {
    psi_[i] = ec_endomorphism(tab_[i]);
  }
}

JacobianPoint GlvTable::mul_add_base(const U256& a,
                                     const U256& b) const noexcept {
  if (base_.infinity || sn_reduce(b).is_zero()) return ec_mul_base(a);
  const U256 ar = sn_reduce(a);
  const U256 br = sn_reduce(b);
  if (ar.is_zero()) return mul(br);

  const GlvGenTables& gt = glv_generator_tables();
  const GlvSplit sa = glv_split(ar);
  const GlvSplit sb = glv_split(br);
  std::array<std::int8_t, 258> da1;
  std::array<std::int8_t, 258> da2;
  std::array<std::int8_t, 258> db1;
  std::array<std::int8_t, 258> db2;
  const unsigned la1 = wnaf(sa.k1, kGlvGenWidth, da1);
  const unsigned la2 = wnaf(sa.k2, kGlvGenWidth, da2);
  const unsigned lb1 = wnaf(sb.k1, 5, db1);
  const unsigned lb2 = wnaf(sb.k2, 5, db2);
  if (sa.neg1) negate_digits(da1, la1);
  if (sa.neg2) negate_digits(da2, la2);
  if (sb.neg1) negate_digits(db1, lb1);
  if (sb.neg2) negate_digits(db2, lb2);
  const DigitStreamA as[4] = {{gt.g.data(), &da1, la1},
                              {gt.psi.data(), &da2, la2},
                              {tab_.data(), &db1, lb1},
                              {psi_.data(), &db2, lb2}};
  return wnaf_walk(as, 4, nullptr, 0);
}

JacobianPoint GlvTable::mul(const U256& k) const noexcept {
  if (base_.infinity) return JacobianPoint::identity();
  const U256 kr = sn_reduce(k);
  if (kr.is_zero()) return JacobianPoint::identity();
  const GlvSplit s = glv_split(kr);
  std::array<std::int8_t, 258> d1;
  std::array<std::int8_t, 258> d2;
  const unsigned l1 = wnaf(s.k1, 5, d1);
  const unsigned l2 = wnaf(s.k2, 5, d2);
  if (s.neg1) negate_digits(d1, l1);
  if (s.neg2) negate_digits(d2, l2);
  const DigitStreamA as[2] = {{tab_.data(), &d1, l1}, {psi_.data(), &d2, l2}};
  return wnaf_walk(as, 2, nullptr, 0);
}

// ---- EcMsm ----

void EcMsm::push_stream(const AffinePoint* atab, const JacobianPoint* jtab,
                        const U256& k, unsigned width, bool negate) {
  Stream s;
  s.atab = atab;
  s.jtab = jtab;
  s.len = wnaf(k, width, s.d);
  if (negate) negate_digits(s.d, s.len);
  if (s.len != 0) streams_.push_back(std::move(s));
}

void EcMsm::add_base(const U256& k) {
  base_scalar_ = sn_add(base_scalar_, sn_reduce(k));
}

void EcMsm::add_comb(const FixedBaseTable& table, const U256& k) {
  const U256 kr = sn_reduce(k);
  if (!kr.is_zero()) combs_.emplace_back(&table, kr);
}

void EcMsm::add_glv(const GlvTable& table, const U256& k) {
  const U256 kr = sn_reduce(k);
  if (kr.is_zero() || table.base_.infinity) return;
  const GlvSplit s = glv_split(kr);
  push_stream(table.tab_.data(), nullptr, s.k1, 5, s.neg1);
  push_stream(table.psi_.data(), nullptr, s.k2, 5, s.neg2);
}

void EcMsm::add_glv(const AffinePoint& p, const U256& k) {
  const U256 kr = sn_reduce(k);
  if (kr.is_zero() || p.infinity) return;
  const GlvSplit s = glv_split(kr);
  owned_jac_.push_back(odd_multiples(p));
  const JacobianPoint* ptab = owned_jac_.back().data();
  owned_jac_.push_back(endo_table(owned_jac_.back()));
  const JacobianPoint* psitab = owned_jac_.back().data();
  push_stream(nullptr, ptab, s.k1, 5, s.neg1);
  push_stream(nullptr, psitab, s.k2, 5, s.neg2);
}

void EcMsm::add_naf(const AffinePoint& p, const U256& k) {
  const U256 kr = sn_reduce(k);
  if (kr.is_zero() || p.infinity) return;
  if ((kr.w[1] | kr.w[2] | kr.w[3]) == 0) {
    short_terms_.emplace_back(kr.w[0], p);
    return;
  }
  owned_affine_.push_back(p);
  push_stream(&owned_affine_.back(), nullptr, kr, 2, false);
}

JacobianPoint EcMsm::result() const {
  // Short terms: enough of them amortize into a Bos–Coster reduction;
  // a handful ride the shared chain as width-2 NAF streams instead.
  JacobianPoint short_sum = JacobianPoint::identity();
  std::vector<Stream> short_streams;
  if (short_terms_.size() >= kBosCosterMin) {
    std::vector<std::pair<std::uint64_t, JacobianPoint>> terms;
    terms.reserve(short_terms_.size());
    for (const auto& [k, p] : short_terms_) {
      terms.emplace_back(k, JacobianPoint::from_affine(p));
    }
    short_sum = bos_coster(std::move(terms));
  } else {
    short_streams.reserve(short_terms_.size());
    for (const auto& [k, p] : short_terms_) {
      Stream s;
      s.atab = &p;
      s.len = wnaf(U256{k}, 2, s.d);
      short_streams.push_back(std::move(s));
    }
  }

  std::vector<DigitStreamA> as;
  std::vector<DigitStreamJ> js;
  as.reserve(streams_.size() + short_streams.size());
  for (const Stream& s : streams_) {
    if (s.atab != nullptr) {
      as.push_back(DigitStreamA{s.atab, &s.d, s.len});
    } else {
      js.push_back(DigitStreamJ{s.jtab, &s.d, s.len});
    }
  }
  for (const Stream& s : short_streams) {
    as.push_back(DigitStreamA{s.atab, &s.d, s.len});
  }
  JacobianPoint acc = wnaf_walk(as.data(), as.size(), js.data(), js.size());
  acc = ec_add(acc, short_sum);

  // Comb-table terms contribute pure mixed additions — appended after the
  // chain, where they cost nothing extra in doublings.
  const auto comb_walk = [&acc](const FixedBaseTable& t, const U256& kr) {
    for (unsigned i = 0; i < FixedBaseTable::kWindows; ++i) {
      const unsigned window =
          static_cast<unsigned>(kr.w[i / 16] >>
                                ((i % 16) * FixedBaseTable::kWindowBits)) &
          0xfu;
      if (window != 0) acc = ec_add_mixed(acc, t.table_[i][window - 1]);
    }
  };
  for (const auto& [table, scalar] : combs_) comb_walk(*table, scalar);
  if (!base_scalar_.is_zero()) {
    comb_walk(FixedBaseTable::generator(), base_scalar_);
  }
  return acc;
}

}  // namespace identxx::crypto
