#include "crypto/verifier.hpp"

namespace identxx::crypto {

namespace {

std::span<const std::uint8_t> as_bytes(std::string_view s) noexcept {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

void hash_u256(Sha256& h, const U256& v) {
  const auto bytes = v.to_bytes();
  h.update(std::span<const std::uint8_t>(bytes.data(), bytes.size()));
}

void hash_u64(Sha256& h, std::uint64_t v) {
  std::array<std::uint8_t, 8> bytes;
  for (std::size_t i = 0; i < 8; ++i) {
    bytes[i] = static_cast<std::uint8_t>(v >> (56 - 8 * i));
  }
  h.update(std::span<const std::uint8_t>(bytes.data(), bytes.size()));
}

}  // namespace

void SchnorrVerifier::register_key(const PublicKey& key) {
  const detail::PointId id = detail::point_id(key.point);
  if (registered_.contains(id)) return;
  const std::uint64_t generation = ++generations_[id];
  registered_.emplace(id, RegisteredKey{PrecomputedPublicKey(key), generation});
}

void SchnorrVerifier::invalidate_key(const PublicKey& key) {
  const detail::PointId id = detail::point_id(key.point);
  registered_.erase(id);
  ++generations_[id];  // old memo entries become unreachable
}

bool SchnorrVerifier::verify(const PublicKey& key, std::string_view message,
                             const Signature& sig) {
  return verify(key, as_bytes(message), sig);
}

bool SchnorrVerifier::verify(const PublicKey& key,
                             std::span<const std::uint8_t> message,
                             const Signature& sig) {
  ++stats_.verifications;

  const detail::PointId id = detail::point_id(key.point);
  const auto gen_it = generations_.find(id);

  // Memo identity: SHA-256 over (key value, key generation, signature,
  // message digest) — a fixed 32-byte key, nothing heap-built per call.
  const Digest msg_digest = Sha256::hash(message);
  Sha256 h;
  hash_u256(h, key.point.x);
  hash_u256(h, key.point.y);
  hash_u64(h, gen_it == generations_.end() ? 0 : gen_it->second);
  hash_u256(h, sig.r.x);
  hash_u256(h, sig.r.y);
  hash_u256(h, sig.s);
  h.update(std::span<const std::uint8_t>(msg_digest.data(), msg_digest.size()));
  const Digest memo_key = h.finish();

  if (const auto it = memo_.find(memo_key); it != memo_.end()) {
    ++stats_.memo_hits;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->ok;
  }
  ++stats_.memo_misses;

  bool ok = false;
  if (const auto reg = registered_.find(id); reg != registered_.end()) {
    ++stats_.table_verifications;
    ok = crypto::verify(reg->second.key, message, sig);
  } else {
    ok = crypto::verify(key, message, sig);
  }

  if (memo_.size() >= memo_capacity_) {
    memo_.erase(order_.back().id);
    order_.pop_back();
    ++stats_.memo_evictions;
  }
  order_.push_front(MemoEntry{memo_key, ok});
  memo_[memo_key] = order_.begin();
  return ok;
}

}  // namespace identxx::crypto
