#include "crypto/verifier.hpp"

#include <cstddef>
#include <unordered_set>

namespace identxx::crypto {

namespace {

std::span<const std::uint8_t> as_bytes(std::string_view s) noexcept {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

void hash_u256(Sha256& h, const U256& v) {
  const auto bytes = v.to_bytes();
  h.update(std::span<const std::uint8_t>(bytes.data(), bytes.size()));
}

void hash_u64(Sha256& h, std::uint64_t v) {
  std::array<std::uint8_t, 8> bytes;
  for (std::size_t i = 0; i < 8; ++i) {
    bytes[i] = static_cast<std::uint8_t>(v >> (56 - 8 * i));
  }
  h.update(std::span<const std::uint8_t>(bytes.data(), bytes.size()));
}

AffinePoint point_from(const detail::PointId& id) noexcept {
  AffinePoint p;
  for (std::size_t i = 0; i < 4; ++i) {
    p.x.w[i] = id[i];
    p.y.w[i] = id[i + 4];
  }
  p.infinity = false;
  return p;
}

}  // namespace

/// A batch item that survived memo lookup and structural validation, with
/// its Fiat–Shamir challenge and random-linear-combination coefficient.
struct SchnorrVerifier::PendingItem {
  std::size_t index = 0;  ///< position in the caller's span / results
  const BatchItem* item = nullptr;
  detail::PointId id{};  ///< key identity, computed once per item
  MemoKey memo_key{};
  U256 e;  ///< Schnorr challenge for (R, P, m)
  U256 z;  ///< 64-bit RLC coefficient (nonzero)
};

void SchnorrVerifier::register_key(const PublicKey& key) {
  // A registered key is guaranteed on-curve: the batch intake relies on
  // this to skip the per-item curve check for registered principals.
  if (key.point.infinity || !key.point.on_curve()) return;
  const detail::PointId id = detail::point_id(key.point);
  if (registered_.contains(id)) return;
  const std::uint64_t generation = ++generations_[id];
  registered_.emplace(id, generation);
  tiers_.add(key.point);
}

void SchnorrVerifier::invalidate_key(const PublicKey& key) {
  const detail::PointId id = detail::point_id(key.point);
  registered_.erase(id);
  ++generations_[id];  // old memo entries become unreachable
  tiers_.remove(key.point);
}

void SchnorrVerifier::set_tier_config(const KeyTierConfig& config) {
  tiers_ = KeyTierStore(config);
  for (const auto& [id, generation] : registered_) {
    tiers_.add(point_from(id));
  }
}

SchnorrVerifier::MemoKey SchnorrVerifier::memo_key_for(
    const detail::PointId& id, const Signature& sig, const U256& e) const {
  const auto gen_it = generations_.find(id);
  MemoKey k;
  k.id = id;
  k.generation = gen_it == generations_.end() ? 0 : gen_it->second;
  k.rx = sig.r.x;
  k.ry = sig.r.y;
  k.s = sig.s;
  k.e = e;
  return k;
}

void SchnorrVerifier::memo_store(const MemoKey& memo_key, bool ok) {
  if (const auto it = memo_.find(memo_key); it != memo_.end()) {
    // Duplicate items inside one batch settle to the same verdict; just
    // refresh recency.
    it->second->ok = ok;
    order_.splice(order_.begin(), order_, it->second);
    return;
  }
  if (memo_.size() >= memo_capacity_ && !order_.empty()) {
    // Recycle the LRU node in place: no free/alloc pair per eviction.
    const auto last = std::prev(order_.end());
    memo_.erase(last->id);
    last->id = memo_key;
    last->ok = ok;
    order_.splice(order_.begin(), order_, last);
    ++stats_.memo_evictions;
  } else {
    order_.push_front(MemoEntry{memo_key, ok});
  }
  memo_[memo_key] = order_.begin();
}

void SchnorrVerifier::memo_store_range(
    const std::vector<PendingItem>& pending, std::size_t a, std::size_t b,
    bool ok) {
  std::size_t start = a;
  if (b - a > memo_capacity_) {
    // Only the last `memo_capacity_` distinct keys of the range can
    // survive the loop's own evictions; anything stored before that
    // suffix is erased again before this call returns.  Walking the
    // suffix forward then reproduces the exact LRU end state (refreshes
    // included), just without the throwaway stores.
    std::unordered_set<MemoKey, MemoKeyHash> distinct;
    distinct.reserve(memo_capacity_ + 1);
    start = b;
    while (start > a && distinct.size() < memo_capacity_) {
      distinct.insert(pending[start - 1].memo_key);
      --start;
    }
  }
  for (std::size_t j = start; j < b; ++j) {
    memo_store(pending[j].memo_key, ok);
  }
}

bool SchnorrVerifier::verify(const PublicKey& key, std::string_view message,
                             const Signature& sig) {
  return verify(key, as_bytes(message), sig);
}

bool SchnorrVerifier::verify(const PublicKey& key,
                             std::span<const std::uint8_t> message,
                             const Signature& sig) {
  ++stats_.verifications;

  const U256 e = schnorr_challenge(sig.r, key.point, message);
  const detail::PointId id = detail::point_id(key.point);
  const MemoKey memo_key = memo_key_for(id, sig, e);

  if (const auto it = memo_.find(memo_key); it != memo_.end()) {
    ++stats_.memo_hits;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->ok;
  }
  ++stats_.memo_misses;

  bool ok = false;
  if (registered_.contains(id)) {
    const KeyTierStore::Tables tables = tiers_.use(key.point);
    if (tables.hot) {
      ++stats_.table_verifications;
    } else if (tables.warm) {
      ++stats_.warm_verifications;
    } else {
      ++stats_.cold_verifications;
    }
    ok = verify_tiered(key, tables.hot.get(), tables.warm.get(), e, sig);
  } else {
    // Unregistered keys keep the process-wide table cache of plain
    // verify() (repeat keys promote), at the cost of re-hashing.
    ok = crypto::verify(key, message, sig);
  }

  memo_store(memo_key, ok);
  return ok;
}

bool SchnorrVerifier::batch_check(
    const std::vector<PendingItem>& pending, std::size_t lo, std::size_t hi,
    const std::unordered_map<detail::PointId, KeyTierStore::Tables,
                             detail::PointIdHash>& tables) {
  ++stats_.batch_msms;

  // Accept iff (sum z_i s_i) * G == sum z_i R_i + sum (z_i e_i) P_i,
  // folded into one MSM checked against the identity:
  //   (n - sum z_i s_i) G + sum z_i R_i + sum (z_i e_i) P_i == O.
  EcMsm msm;
  U256 s_sum{};
  std::unordered_map<detail::PointId, U256, detail::PointIdHash> key_scalars;
  key_scalars.reserve(tables.size() + 1);
  for (std::size_t j = lo; j < hi; ++j) {
    const PendingItem& p = pending[j];
    s_sum = sn_add(s_sum, sn_mul(p.z, p.item->sig.s));
    msm.add_naf(p.item->sig.r, p.z);
    // Merge scalars per distinct key: a burst of attestations from one
    // daemon costs one table walk, not one per signature.
    auto [it, inserted] = key_scalars.try_emplace(p.id, U256{});
    it->second = sn_add(it->second, sn_mul(p.z, p.e));
  }
  if (!s_sum.is_zero()) {
    msm.add_base(U256::sub(Secp256k1::n(), s_sum).first);
  }
  for (const auto& [id, scalar] : key_scalars) {
    if (scalar.is_zero()) continue;
    const auto t = tables.find(id);
    if (t != tables.end() && t->second.hot) {
      msm.add_comb(*t->second.hot, scalar);
    } else if (t != tables.end() && t->second.warm) {
      msm.add_glv(*t->second.warm, scalar);
    } else {
      msm.add_glv(point_from(id), scalar);
    }
  }
  return msm.result().is_identity();
}

void SchnorrVerifier::batch_resolve(
    std::vector<bool>& results, const std::vector<PendingItem>& pending,
    std::size_t lo, std::size_t hi,
    const std::unordered_map<detail::PointId, KeyTierStore::Tables,
                             detail::PointIdHash>& tables) {
  // Precondition: the RLC check over [lo, hi) failed.
  if (hi - lo == 1) {
    // Ground truth for the culprit candidate: a real single verification,
    // not a z-weighted one.
    const PendingItem& p = pending[lo];
    const auto t = tables.find(p.id);
    const FixedBaseTable* hot =
        t != tables.end() ? t->second.hot.get() : nullptr;
    const GlvTable* warm = t != tables.end() ? t->second.warm.get() : nullptr;
    const bool ok = verify_tiered(p.item->key, hot, warm, p.e, p.item->sig);
    results[p.index] = ok;
    memo_store(p.memo_key, ok);
    return;
  }

  const std::size_t mid = lo + (hi - lo) / 2;
  const auto settle = [&](std::size_t a, std::size_t b) {
    for (std::size_t j = a; j < b; ++j) {
      results[pending[j].index] = true;
    }
    memo_store_range(pending, a, b, true);
    stats_.batch_items += b - a;
  };

  if (batch_check(pending, lo, mid, tables)) {
    settle(lo, mid);
    // The halves sum to the whole: if the whole failed and the left half
    // passes, the right half must fail — skip its check.
    batch_resolve(results, pending, mid, hi, tables);
    return;
  }
  batch_resolve(results, pending, lo, mid, tables);
  if (batch_check(pending, mid, hi, tables)) {
    settle(mid, hi);
  } else {
    batch_resolve(results, pending, mid, hi, tables);
  }
}

std::vector<bool> SchnorrVerifier::verify_batch(
    std::span<const BatchItem> items) {
  std::vector<bool> results(items.size(), false);
  if (items.empty()) return results;
  ++stats_.batch_calls;

  std::vector<PendingItem> pending;
  pending.reserve(items.size());
  // Per-key batch multiplicity, collected during intake so the tier
  // snapshot below advances each registered key's use count correctly.
  std::unordered_map<detail::PointId, std::uint64_t, detail::PointIdHash>
      multiplicity;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const BatchItem& item = items[i];
    ++stats_.verifications;
    const U256 e =
        schnorr_challenge(item.sig.r, item.key.point, as_bytes(item.message));
    const detail::PointId id = detail::point_id(item.key.point);
    const MemoKey memo_key = memo_key_for(id, item.sig, e);
    if (const auto it = memo_.find(memo_key); it != memo_.end()) {
      ++stats_.memo_hits;
      order_.splice(order_.begin(), order_, it->second);
      results[i] = it->second->ok;
      continue;
    }
    ++stats_.memo_misses;
    // Fail closed on structural defects without spending MSM terms on
    // them; the verdict is memoized like any other.  register_key
    // guarantees registered keys are on-curve, so only unregistered keys
    // pay the curve check here.
    const bool registered = registered_.contains(id);
    if ((!registered &&
         (item.key.point.infinity || !item.key.point.on_curve())) ||
        !signature_well_formed(item.sig)) {
      memo_store(memo_key, false);
      continue;
    }
    if (registered) ++multiplicity[id];
    PendingItem p;
    p.index = i;
    p.item = &item;
    p.id = id;
    p.memo_key = memo_key;
    p.e = e;
    pending.push_back(p);
  }
  if (pending.empty()) return results;

  // Deterministic Fiat–Shamir coefficients: z_j is drawn from a digest
  // binding the *entire* batch plus the item position, so no signer can
  // choose signatures whose errors cancel — any change to any item
  // reshuffles every coefficient.  Per item, (s, e) is a complete
  // commitment: e = H(R || P || m) already binds the nonce point, the key
  // and the message, and s is the rest of the verification equation —
  // 64 transcript bytes per item instead of the full tuple.  64-bit
  // coefficients bound the extra scalar work while keeping the forgery
  // survival probability at 2^-64 per batch (DESIGN.md §15).
  Sha256 bd;
  bd.update("identxx-batch-v2");
  for (const PendingItem& p : pending) {
    hash_u256(bd, p.item->sig.s);
    hash_u256(bd, p.e);
  }
  const Digest batch_digest = bd.finish();
  // Counter-mode expansion: each digest of (batch_digest, counter) yields
  // four 64-bit coefficients (bytes [8j, 8j+8)) — same 2^-64 survival
  // bound per item, a quarter of the hashing.
  Digest block{};
  for (std::size_t j = 0; j < pending.size(); ++j) {
    if (j % 4 == 0) {
      Sha256 h;
      h.update(std::span<const std::uint8_t>(batch_digest.data(),
                                             batch_digest.size()));
      hash_u64(h, j / 4);
      block = h.finish();
    }
    std::uint64_t z = 0;
    for (std::size_t b = 0; b < 8; ++b) {
      z = (z << 8) | block[(j % 4) * 8 + b];
    }
    if (z == 0) z = 1;
    pending[j].z = U256{z};
  }

  // Snapshot tier tables once for the whole batch (shared_ptrs keep them
  // alive even if touching a later key evicts an earlier one).  Each
  // registered key's use count advances by its batch multiplicity.
  std::unordered_map<detail::PointId, KeyTierStore::Tables,
                     detail::PointIdHash>
      tables;
  tables.reserve(multiplicity.size());
  for (const auto& [id, uses] : multiplicity) {
    tables.emplace(id, tiers_.use(point_from(id), uses));
  }

  if (pending.size() == 1) {
    // No aggregation to be had; take the plain tiered path.
    const PendingItem& p = pending[0];
    const auto t = tables.find(p.id);
    const FixedBaseTable* hot =
        t != tables.end() ? t->second.hot.get() : nullptr;
    const GlvTable* warm = t != tables.end() ? t->second.warm.get() : nullptr;
    if (hot) {
      ++stats_.table_verifications;
    } else if (warm) {
      ++stats_.warm_verifications;
    } else if (t != tables.end()) {
      ++stats_.cold_verifications;
    }
    const bool ok = verify_tiered(p.item->key, hot, warm, p.e, p.item->sig);
    results[p.index] = ok;
    memo_store(p.memo_key, ok);
    return results;
  }

  if (batch_check(pending, 0, pending.size(), tables)) {
    for (const PendingItem& p : pending) {
      results[p.index] = true;
    }
    memo_store_range(pending, 0, pending.size(), true);
    stats_.batch_items += pending.size();
    return results;
  }

  ++stats_.batch_rejects;
  batch_resolve(results, pending, 0, pending.size(), tables);
  return results;
}

}  // namespace identxx::crypto
