#pragma once

// Fixed-width 256-bit unsigned arithmetic, the substrate for the secp256k1
// group used by the Schnorr signatures in `pf::verify`.
//
// Representation: four 64-bit limbs, little-endian (w[0] is least
// significant).  All operations are constant-size; nothing allocates.

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

namespace identxx::crypto {

struct U512;  // forward declaration (eight limbs, mul result)

struct U256 {
  std::array<std::uint64_t, 4> w{0, 0, 0, 0};

  constexpr U256() = default;
  constexpr explicit U256(std::uint64_t low) : w{low, 0, 0, 0} {}
  constexpr U256(std::uint64_t w0, std::uint64_t w1, std::uint64_t w2,
                 std::uint64_t w3)
      : w{w0, w1, w2, w3} {}

  /// Parse big-endian hex (1..64 hex digits, optional "0x" prefix).
  [[nodiscard]] static std::optional<U256> from_hex(std::string_view hex);

  /// Parse exactly 32 big-endian bytes.
  [[nodiscard]] static U256 from_bytes(std::span<const std::uint8_t, 32> bytes) noexcept;

  /// 64 lowercase hex digits, big-endian, zero padded.
  [[nodiscard]] std::string to_hex() const;

  /// 32 big-endian bytes.
  [[nodiscard]] std::array<std::uint8_t, 32> to_bytes() const noexcept;

  [[nodiscard]] constexpr bool is_zero() const noexcept {
    return (w[0] | w[1] | w[2] | w[3]) == 0;
  }

  /// Bit i (0 = least significant).  i must be < 256.
  [[nodiscard]] constexpr bool bit(unsigned i) const noexcept {
    return (w[i / 64] >> (i % 64)) & 1;
  }

  /// Index of highest set bit plus one; 0 for zero.
  [[nodiscard]] unsigned bit_length() const noexcept;

  [[nodiscard]] constexpr bool operator==(const U256&) const noexcept = default;

  /// Three-way compare: negative / zero / positive.
  [[nodiscard]] static int cmp(const U256& a, const U256& b) noexcept;

  /// a + b; carry-out returned separately.
  [[nodiscard]] static std::pair<U256, bool> add(const U256& a, const U256& b) noexcept;

  /// a - b; borrow-out returned separately (true when a < b).
  [[nodiscard]] static std::pair<U256, bool> sub(const U256& a, const U256& b) noexcept;

  /// Full 256x256 -> 512 bit product.
  [[nodiscard]] static U512 mul_wide(const U256& a, const U256& b) noexcept;

  /// a * a: the symmetric schoolbook computes each off-diagonal partial
  /// product once and doubles, ~40% fewer word multiplies than mul_wide.
  /// Point doubling is squaring-heavy, so this shows up directly in
  /// verification latency.
  [[nodiscard]] static U512 sqr_wide(const U256& a) noexcept;

  /// Left shift by one bit; the shifted-out top bit is returned.
  [[nodiscard]] std::pair<U256, bool> shl1() const noexcept;

  /// Right shift by one bit.
  [[nodiscard]] U256 shr1() const noexcept;
};

struct U512 {
  std::array<std::uint64_t, 8> w{};

  [[nodiscard]] constexpr bool bit(unsigned i) const noexcept {
    return (w[i / 64] >> (i % 64)) & 1;
  }

  /// High and low 256-bit halves.
  [[nodiscard]] U256 low() const noexcept;
  [[nodiscard]] U256 high() const noexcept;
};

/// Generic x mod m via binary long division.  Suitable for the handful of
/// scalar (mod n) operations per signature; field operations use the
/// specialized secp256k1 reduction in ec.cpp instead.
[[nodiscard]] U256 mod(const U512& x, const U256& m) noexcept;

/// round(x / m) to nearest (ties round up).  The quotient must fit in 256
/// bits; bits above that are discarded.  Slow (bit-serial) — used once at
/// startup to derive the GLV decomposition constants rather than trusting
/// two more transcribed magic numbers.
[[nodiscard]] U256 div_round(const U512& x, const U256& m) noexcept;

/// (a + b) mod m, assuming a, b < m.
[[nodiscard]] U256 add_mod(const U256& a, const U256& b, const U256& m) noexcept;

/// (a - b) mod m, assuming a, b < m.
[[nodiscard]] U256 sub_mod(const U256& a, const U256& b, const U256& m) noexcept;

/// (a * b) mod m via full product + generic reduction.
[[nodiscard]] U256 mul_mod(const U256& a, const U256& b, const U256& m) noexcept;

/// a^(-1) mod m for odd prime m (Fermat: a^(m-2)).  m must be prime.
[[nodiscard]] U256 inv_mod(const U256& a, const U256& m) noexcept;

/// a^e mod m by square-and-multiply.
[[nodiscard]] U256 pow_mod(const U256& a, const U256& e, const U256& m) noexcept;

}  // namespace identxx::crypto
