#include "crypto/u256.hpp"

#include <bit>

#include "util/hex.hpp"

namespace identxx::crypto {

namespace {

__extension__ typedef unsigned __int128 u128;

}  // namespace

std::optional<U256> U256::from_hex(std::string_view hex) {
  if (hex.size() >= 2 && hex[0] == '0' && (hex[1] == 'x' || hex[1] == 'X')) {
    hex.remove_prefix(2);
  }
  if (hex.empty() || hex.size() > 64) return std::nullopt;
  // Left-pad to 64 digits, then decode per limb.
  std::string padded(64 - hex.size(), '0');
  padded.append(hex);
  const auto bytes = util::hex_decode(padded);
  if (!bytes) return std::nullopt;
  std::array<std::uint8_t, 32> be{};
  std::copy(bytes->begin(), bytes->end(), be.begin());
  return from_bytes(std::span<const std::uint8_t, 32>(be));
}

U256 U256::from_bytes(std::span<const std::uint8_t, 32> bytes) noexcept {
  U256 out;
  for (std::size_t limb = 0; limb < 4; ++limb) {
    std::uint64_t v = 0;
    // Byte 0 is the most significant; limb 3 holds the top 8 bytes.
    for (std::size_t i = 0; i < 8; ++i) {
      v = (v << 8) | bytes[(3 - limb) * 8 + i];
    }
    out.w[limb] = v;
  }
  return out;
}

std::string U256::to_hex() const {
  const auto bytes = to_bytes();
  return util::hex_encode(std::span(bytes.data(), bytes.size()));
}

std::array<std::uint8_t, 32> U256::to_bytes() const noexcept {
  std::array<std::uint8_t, 32> out{};
  for (std::size_t limb = 0; limb < 4; ++limb) {
    const std::uint64_t v = w[3 - limb];
    for (std::size_t i = 0; i < 8; ++i) {
      out[limb * 8 + i] = static_cast<std::uint8_t>(v >> (56 - 8 * i));
    }
  }
  return out;
}

unsigned U256::bit_length() const noexcept {
  for (int limb = 3; limb >= 0; --limb) {
    if (w[static_cast<std::size_t>(limb)] != 0) {
      return static_cast<unsigned>(limb) * 64 +
             (64 - static_cast<unsigned>(
                       std::countl_zero(w[static_cast<std::size_t>(limb)])));
    }
  }
  return 0;
}

int U256::cmp(const U256& a, const U256& b) noexcept {
  for (int i = 3; i >= 0; --i) {
    const auto ai = a.w[static_cast<std::size_t>(i)];
    const auto bi = b.w[static_cast<std::size_t>(i)];
    if (ai < bi) return -1;
    if (ai > bi) return 1;
  }
  return 0;
}

std::pair<U256, bool> U256::add(const U256& a, const U256& b) noexcept {
  U256 out;
  u128 carry = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const u128 sum = static_cast<u128>(a.w[i]) + b.w[i] + carry;
    out.w[i] = static_cast<std::uint64_t>(sum);
    carry = sum >> 64;
  }
  return {out, carry != 0};
}

std::pair<U256, bool> U256::sub(const U256& a, const U256& b) noexcept {
  U256 out;
  u128 borrow = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const u128 diff = static_cast<u128>(a.w[i]) - b.w[i] - borrow;
    out.w[i] = static_cast<std::uint64_t>(diff);
    borrow = (diff >> 64) & 1;  // two's complement: top bits set on underflow
  }
  return {out, borrow != 0};
}

U512 U256::mul_wide(const U256& a, const U256& b) noexcept {
  U512 out;
  for (std::size_t i = 0; i < 4; ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      const u128 cur = static_cast<u128>(a.w[i]) * b.w[j] + out.w[i + j] + carry;
      out.w[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    out.w[i + 4] = carry;
  }
  return out;
}

U512 U256::sqr_wide(const U256& a) noexcept {
  // Off-diagonal partial products a[i]*a[j] (i < j), each computed once.
  U512 out;
  for (std::size_t i = 0; i < 4; ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = i + 1; j < 4; ++j) {
      const u128 cur = static_cast<u128>(a.w[i]) * a.w[j] + out.w[i + j] + carry;
      out.w[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    out.w[i + 4] = carry;
  }
  // Double them (the off-diagonal sum is < 2^511, so the shift cannot
  // overflow), then add the diagonal squares.
  std::uint64_t shift_carry = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    const std::uint64_t next = out.w[i] >> 63;
    out.w[i] = (out.w[i] << 1) | shift_carry;
    shift_carry = next;
  }
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const u128 sq = static_cast<u128>(a.w[i]) * a.w[i];
    u128 cur = static_cast<u128>(out.w[2 * i]) + static_cast<std::uint64_t>(sq) + carry;
    out.w[2 * i] = static_cast<std::uint64_t>(cur);
    cur = static_cast<u128>(out.w[2 * i + 1]) +
          static_cast<std::uint64_t>(sq >> 64) + static_cast<std::uint64_t>(cur >> 64);
    out.w[2 * i + 1] = static_cast<std::uint64_t>(cur);
    carry = static_cast<std::uint64_t>(cur >> 64);
  }
  return out;
}

std::pair<U256, bool> U256::shl1() const noexcept {
  U256 out;
  bool carry = false;
  for (std::size_t i = 0; i < 4; ++i) {
    const bool next_carry = (w[i] >> 63) & 1;
    out.w[i] = (w[i] << 1) | static_cast<std::uint64_t>(carry);
    carry = next_carry;
  }
  return {out, carry};
}

U256 U256::shr1() const noexcept {
  U256 out;
  for (std::size_t i = 0; i < 4; ++i) {
    out.w[i] = w[i] >> 1;
    if (i + 1 < 4) out.w[i] |= w[i + 1] << 63;
  }
  return out;
}

U256 U512::low() const noexcept {
  return U256{w[0], w[1], w[2], w[3]};
}

U256 U512::high() const noexcept {
  return U256{w[4], w[5], w[6], w[7]};
}

U256 mod(const U512& x, const U256& m) noexcept {
  // Binary long division: feed bits from the top into a 257-bit remainder.
  U256 rem;
  for (int i = 511; i >= 0; --i) {
    const auto [shifted, overflow] = rem.shl1();
    rem = shifted;
    if (x.bit(static_cast<unsigned>(i))) rem.w[0] |= 1;
    // After shifting, remainder < 2m (invariant: before shift rem < m, and m
    // has its top bit clear only in general; handle the 257th bit via
    // `overflow`).
    if (overflow || U256::cmp(rem, m) >= 0) {
      rem = U256::sub(rem, m).first;
    }
  }
  return rem;
}

U256 div_round(const U512& x, const U256& m) noexcept {
  // Same bit-serial division as mod(), additionally collecting quotient
  // bits (those above bit 255 are dropped by construction).
  U256 quot;
  U256 rem;
  for (int i = 511; i >= 0; --i) {
    const auto [shifted, overflow] = rem.shl1();
    rem = shifted;
    if (x.bit(static_cast<unsigned>(i))) rem.w[0] |= 1;
    if (overflow || U256::cmp(rem, m) >= 0) {
      rem = U256::sub(rem, m).first;
      if (i < 256) quot.w[static_cast<std::size_t>(i) / 64] |= 1ULL << (i % 64);
    }
  }
  // Round to nearest: bump when 2*rem >= m.
  const auto [twice, carry] = rem.shl1();
  if (carry || U256::cmp(twice, m) >= 0) {
    quot = U256::add(quot, U256{1}).first;
  }
  return quot;
}

U256 add_mod(const U256& a, const U256& b, const U256& m) noexcept {
  const auto [sum, carry] = U256::add(a, b);
  if (carry || U256::cmp(sum, m) >= 0) {
    return U256::sub(sum, m).first;
  }
  return sum;
}

U256 sub_mod(const U256& a, const U256& b, const U256& m) noexcept {
  const auto [diff, borrow] = U256::sub(a, b);
  if (borrow) {
    return U256::add(diff, m).first;
  }
  return diff;
}

U256 mul_mod(const U256& a, const U256& b, const U256& m) noexcept {
  return mod(U256::mul_wide(a, b), m);
}

U256 pow_mod(const U256& a, const U256& e, const U256& m) noexcept {
  U256 result{1};
  const unsigned bits = e.bit_length();
  for (int i = static_cast<int>(bits) - 1; i >= 0; --i) {
    result = mul_mod(result, result, m);
    if (e.bit(static_cast<unsigned>(i))) {
      result = mul_mod(result, a, m);
    }
  }
  return result;
}

U256 inv_mod(const U256& a, const U256& m) noexcept {
  // Fermat's little theorem: a^(m-2) mod m for prime m.
  const U256 exponent = U256::sub(m, U256{2}).first;
  return pow_mod(a, exponent, m);
}

}  // namespace identxx::crypto
