#pragma once

// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for executable hashes (`exe-hash` key-value pairs), as the message
// digest inside Schnorr signatures, and for deterministic nonce derivation.

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace identxx::crypto {

using Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 context.
///
///   Sha256 h;
///   h.update(part1).update(part2);
///   Digest d = h.finish();
///
/// `finish` may be called once; the context is then exhausted.
class Sha256 {
 public:
  Sha256() noexcept;

  Sha256& update(std::span<const std::uint8_t> data) noexcept;
  Sha256& update(std::string_view data) noexcept;

  /// Finalize and return the 32-byte digest.
  [[nodiscard]] Digest finish() noexcept;

  /// One-shot convenience.
  [[nodiscard]] static Digest hash(std::span<const std::uint8_t> data) noexcept;
  [[nodiscard]] static Digest hash(std::string_view data) noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// Lowercase hex of a digest.
[[nodiscard]] std::string to_hex(const Digest& digest);

}  // namespace identxx::crypto
