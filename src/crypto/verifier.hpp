#pragma once

// SchnorrVerifier: tiered registered-key tables + memoized verification +
// batch verification.
//
// The flow-setup hot path verifies one signature per daemon attestation,
// and the same attestation recurs constantly: retransmitted responses,
// several flows from one application inside a decide_many batch, repeat
// packet-ins for an undecided flow.  This wrapper adds three layers on top
// of crypto::verify (DESIGN.md §9, §15):
//
//   * a tiered key registry — register_key() tracks a long-lived public key
//     in a memory-budgeted KeyTierStore.  Hot keys hold a full comb table,
//     warm keys a small GLV table, cold keys verify through the per-call
//     GLV path; promotion follows verify frequency, so a shard can track
//     10^6+ principals while spending table memory only on the keys that
//     sign every flow;
//   * a bounded LRU memo of (key, challenge, signature) -> bool, so a
//     byte-identical attestation verifies exactly once per retention
//     window;
//   * verify_batch() — random-linear-combination batch verification: N
//     distinct attestations are checked with one multi-scalar
//     multiplication instead of N full verifies.  A rejected batch is
//     bisected (with the same coefficients) down to ground-truth single
//     verifies, so per-item verdicts are always exact and a forged
//     signature can never hide behind the aggregate.
//
// Soundness of the memo: the key is part of the memo identity (the entry
// binds the *value* of the key, not a name), so a daemon rotating its key
// can never be served a verdict computed under the old key.  Re-registering
// or invalidating a key additionally bumps its generation, which makes
// every memo entry recorded under the old generation unreachable — they
// age out of the LRU like any cold entry.  Batch verification feeds the
// same memo with the same identity format.

#include <array>
#include <cstdint>
#include <list>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "crypto/key_id.hpp"
#include "crypto/key_tier.hpp"
#include "crypto/schnorr.hpp"
#include "crypto/sha256.hpp"

namespace identxx::crypto {

class SchnorrVerifier {
 public:
  static constexpr std::size_t kDefaultMemoCapacity = 4096;

  struct Stats {
    std::uint64_t verifications = 0;  ///< verify() calls + batch items
    std::uint64_t memo_hits = 0;
    std::uint64_t memo_misses = 0;
    std::uint64_t memo_evictions = 0;
    std::uint64_t table_verifications = 0;  ///< served via a hot comb table
    std::uint64_t warm_verifications = 0;   ///< served via a warm GLV table
    std::uint64_t cold_verifications = 0;   ///< registered but tableless
    std::uint64_t batch_calls = 0;          ///< verify_batch() invocations
    std::uint64_t batch_items = 0;          ///< items settled by an RLC check
    std::uint64_t batch_msms = 0;           ///< multi-scalar passes (incl. bisection)
    std::uint64_t batch_rejects = 0;        ///< batches that fell back to bisection
  };

  /// One attestation inside a verify_batch() call.  `message` must stay
  /// alive for the duration of the call.
  struct BatchItem {
    PublicKey key;
    std::string_view message;
    Signature sig;
  };

  explicit SchnorrVerifier(std::size_t memo_capacity = kDefaultMemoCapacity,
                           const KeyTierConfig& tier_config = {})
      : memo_capacity_(memo_capacity == 0 ? 1 : memo_capacity),
        tiers_(tier_config) {}

  /// Track a long-lived key in the tier store (eagerly hot when the table
  /// budget has room).  Idempotent.
  void register_key(const PublicKey& key);

  /// Drop `key`'s tables and make its memoized verdicts unreachable (key
  /// change / revocation).  A later register_key starts a new generation.
  void invalidate_key(const PublicKey& key);

  /// Replace the tier budget/thresholds.  Existing registered keys are
  /// re-seeded into a fresh store (tables rebuild on demand).
  void set_tier_config(const KeyTierConfig& config);

  [[nodiscard]] bool verify(const PublicKey& key, std::string_view message,
                            const Signature& sig);
  [[nodiscard]] bool verify(const PublicKey& key,
                            std::span<const std::uint8_t> message,
                            const Signature& sig);

  /// Verify every item, spending ~one multi-scalar multiplication for the
  /// whole batch when all signatures are valid.  Returns one verdict per
  /// item, in order; verdicts are exact (a rejected aggregate is bisected
  /// to ground truth, so invalid items are false and valid ones true).
  /// Memo hits are honored and all computed verdicts are memoized.
  [[nodiscard]] std::vector<bool> verify_batch(
      std::span<const BatchItem> items);

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t registered_key_count() const noexcept {
    return registered_.size();
  }
  [[nodiscard]] std::size_t memo_size() const noexcept { return memo_.size(); }
  [[nodiscard]] std::size_t memo_capacity() const noexcept {
    return memo_capacity_;
  }
  [[nodiscard]] const KeyTierStore& tiers() const noexcept { return tiers_; }

 private:
  /// Memo identity: the literal (key value, key generation, signature,
  /// challenge) tuple.  The Schnorr challenge e = H(R || P || m) mod n
  /// binds the message (and is needed by every verification anyway, so
  /// the memo costs no extra hashing); the key value, generation and
  /// signature are bound exactly, word for word.
  struct MemoKey {
    detail::PointId id{};  ///< key.x, key.y raw words
    std::uint64_t generation = 0;
    U256 rx, ry, s;
    U256 e;  ///< schnorr_challenge(R, P, message)
    bool operator==(const MemoKey&) const = default;
  };

  struct MemoKeyHash {
    std::size_t operator()(const MemoKey& k) const noexcept {
      // e is a reduced SHA-256 output, already uniform; fold in signature
      // and key words so same-message entries still spread.
      std::uint64_t h = k.e.w[0];
      h ^= k.s.w[0] * 0x9e3779b97f4a7c15ULL;
      h ^= k.rx.w[0] + k.id[0] + k.generation;
      return static_cast<std::size_t>(h);
    }
  };

  struct MemoEntry {
    MemoKey id{};
    bool ok = false;
  };
  using Order = std::list<MemoEntry>;

  /// A batch item that survived memo lookup and structural checks.
  struct PendingItem;

  [[nodiscard]] MemoKey memo_key_for(const detail::PointId& id,
                                     const Signature& sig,
                                     const U256& e) const;
  void memo_store(const MemoKey& memo_key, bool ok);
  /// Memoize `ok` for pending[a, b) in order.  Skips the prefix whose
  /// entries this loop's own LRU evictions would erase before returning.
  void memo_store_range(const std::vector<PendingItem>& pending,
                        std::size_t a, std::size_t b, bool ok);
  /// RLC check over pending[lo, hi): one MSM, true iff the aggregate holds.
  [[nodiscard]] bool batch_check(
      const std::vector<PendingItem>& pending, std::size_t lo, std::size_t hi,
      const std::unordered_map<detail::PointId, KeyTierStore::Tables,
                               detail::PointIdHash>& tables);
  void batch_resolve(
      std::vector<bool>& results, const std::vector<PendingItem>& pending,
      std::size_t lo, std::size_t hi,
      const std::unordered_map<detail::PointId, KeyTierStore::Tables,
                               detail::PointIdHash>& tables);

  std::size_t memo_capacity_;
  Order order_;  ///< front = most recently used
  std::unordered_map<MemoKey, Order::iterator, MemoKeyHash> memo_;
  /// Registered keys -> the generation they were registered under.  Tables
  /// live in the tier store.
  std::unordered_map<detail::PointId, std::uint64_t, detail::PointIdHash>
      registered_;
  /// Per-key memo generation; bumped by invalidate_key/re-register so old
  /// entries can never match again.
  std::unordered_map<detail::PointId, std::uint64_t, detail::PointIdHash>
      generations_;
  KeyTierStore tiers_;
  Stats stats_;
};

}  // namespace identxx::crypto
