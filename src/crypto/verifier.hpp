#pragma once

// SchnorrVerifier: registered-key tables + memoized verification.
//
// The flow-setup hot path verifies one signature per daemon attestation,
// and the same attestation recurs constantly: retransmitted responses,
// several flows from one application inside a decide_many batch, repeat
// packet-ins for an undecided flow.  This wrapper adds two layers on top
// of crypto::verify (DESIGN.md §9):
//
//   * a key registry — register_key() builds the fixed-base comb table for
//     a long-lived public key once, at registration, so every verification
//     under it skips both the doubling chain and the shared table cache;
//   * a bounded LRU memo of (key, message digest, signature) -> bool, so a
//     byte-identical attestation verifies exactly once per retention
//     window.
//
// Soundness of the memo: the key is part of the memo identity (the entry
// binds the *value* of the key, not a name), so a daemon rotating its key
// can never be served a verdict computed under the old key.  Re-registering
// or invalidating a key additionally bumps its generation, which makes
// every memo entry recorded under the old generation unreachable — they
// age out of the LRU like any cold entry.

#include <array>
#include <cstdint>
#include <list>
#include <span>
#include <string_view>
#include <unordered_map>

#include "crypto/key_id.hpp"
#include "crypto/schnorr.hpp"
#include "crypto/sha256.hpp"

namespace identxx::crypto {

class SchnorrVerifier {
 public:
  static constexpr std::size_t kDefaultMemoCapacity = 4096;

  struct Stats {
    std::uint64_t verifications = 0;  ///< verify() calls
    std::uint64_t memo_hits = 0;
    std::uint64_t memo_misses = 0;
    std::uint64_t memo_evictions = 0;
    std::uint64_t table_verifications = 0;  ///< served via a registered table
  };

  explicit SchnorrVerifier(std::size_t memo_capacity = kDefaultMemoCapacity)
      : memo_capacity_(memo_capacity == 0 ? 1 : memo_capacity) {}

  /// Build (once) the comb table for a long-lived key.  Idempotent.
  void register_key(const PublicKey& key);

  /// Drop `key`'s table and make its memoized verdicts unreachable (key
  /// change / revocation).  A later register_key starts a new generation.
  void invalidate_key(const PublicKey& key);

  [[nodiscard]] bool verify(const PublicKey& key, std::string_view message,
                            const Signature& sig);
  [[nodiscard]] bool verify(const PublicKey& key,
                            std::span<const std::uint8_t> message,
                            const Signature& sig);

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t registered_key_count() const noexcept {
    return registered_.size();
  }
  [[nodiscard]] std::size_t memo_size() const noexcept { return memo_.size(); }
  [[nodiscard]] std::size_t memo_capacity() const noexcept {
    return memo_capacity_;
  }

 private:
  /// Memo keys are SHA-256 digests of (key, generation, sig, msg digest);
  /// the digest is uniform, so its first bytes are hash enough.
  struct DigestHash {
    std::size_t operator()(const Digest& d) const noexcept {
      std::size_t h = 0;
      for (std::size_t i = 0; i < sizeof(h); ++i) {
        h = (h << 8) | d[i];
      }
      return h;
    }
  };

  struct RegisteredKey {
    PrecomputedPublicKey key;
    std::uint64_t generation = 0;
  };

  struct MemoEntry {
    Digest id{};
    bool ok = false;
  };
  using Order = std::list<MemoEntry>;

  std::size_t memo_capacity_;
  Order order_;  ///< front = most recently used
  std::unordered_map<Digest, Order::iterator, DigestHash> memo_;
  std::unordered_map<detail::PointId, RegisteredKey, detail::PointIdHash>
      registered_;
  /// Per-key memo generation; bumped by invalidate_key/re-register so old
  /// entries can never match again.
  std::unordered_map<detail::PointId, std::uint64_t, detail::PointIdHash>
      generations_;
  Stats stats_;
};

}  // namespace identxx::crypto
