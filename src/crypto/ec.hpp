#pragma once

// secp256k1 group arithmetic (from scratch, on top of U256).
//
// The ident++ design relies on signed delegation: users and third parties
// sign application `requirements` rules which the controller verifies with
// PF+=2's `verify` function.  That needs genuine public-key semantics —
// an offline signer, an online verifier — so we implement a real group:
// the short Weierstrass curve y^2 = x^3 + 7 over F_p,
//   p = 2^256 - 2^32 - 977,
// with the standard base point G of prime order n.
//
// Performance model (DESIGN.md §9): signature verification sits on the
// flow-setup hot path, so scalar multiplication is precomputation-heavy:
// both moduli reduce by folding against 2^256 - modulus (no division),
// variable-base multiplication is width-5 wNAF, fixed bases (G, and any
// long-lived public key) use a 4-bit windowed comb table that eliminates
// the doubling chain entirely, and Schnorr's s*G - e*P is one fused
// double-scalar pass.  The textbook double-and-add survives as
// `ec_mul_naive`, the oracle the differential tests compare against.

#include <array>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "crypto/u256.hpp"

namespace identxx::crypto {

/// Curve constants.
struct Secp256k1 {
  static const U256& p() noexcept;   ///< field prime
  static const U256& n() noexcept;   ///< group order
  static const U256& gx() noexcept;  ///< base point x
  static const U256& gy() noexcept;  ///< base point y
};

// ---- Field arithmetic mod p (specialized reduction for p = 2^256 - c) ----

[[nodiscard]] U256 fp_add(const U256& a, const U256& b) noexcept;
[[nodiscard]] U256 fp_sub(const U256& a, const U256& b) noexcept;
[[nodiscard]] U256 fp_mul(const U256& a, const U256& b) noexcept;
[[nodiscard]] U256 fp_sqr(const U256& a) noexcept;
[[nodiscard]] U256 fp_inv(const U256& a) noexcept;  ///< a^(p-2); a must be nonzero

// ---- Scalar arithmetic mod n (specialized reduction for n = 2^256 - c) ----
//
// n's fold constant c = 2^256 - n is 129 bits, so a 512-bit product
// reduces in a handful of multiply-accumulate folds instead of the
// 512-iteration binary long division `mod(U512, n)` costs.  The generic
// path in u256.cpp remains for arbitrary moduli (and as the scalar
// differential-test oracle).

/// Reduce a full 512-bit value mod n.
[[nodiscard]] U256 sn_reduce(const U512& x) noexcept;
/// Reduce a 256-bit value mod n (a single conditional subtraction).
[[nodiscard]] U256 sn_reduce(const U256& x) noexcept;
[[nodiscard]] U256 sn_add(const U256& a, const U256& b) noexcept;  ///< a,b < n
[[nodiscard]] U256 sn_sub(const U256& a, const U256& b) noexcept;  ///< a,b < n
[[nodiscard]] U256 sn_mul(const U256& a, const U256& b) noexcept;

// ---- Points ----

/// Affine point; `infinity` encodes the group identity.
struct AffinePoint {
  U256 x;
  U256 y;
  bool infinity = false;

  [[nodiscard]] bool operator==(const AffinePoint&) const noexcept = default;

  /// Is (x, y) on y^2 = x^3 + 7?  The identity is on the curve by fiat.
  [[nodiscard]] bool on_curve() const noexcept;

  [[nodiscard]] static AffinePoint identity() noexcept {
    return AffinePoint{U256{}, U256{}, true};
  }

  [[nodiscard]] static AffinePoint generator() noexcept;
};

/// Jacobian projective point (X/Z^2, Y/Z^3); Z == 0 encodes identity.
struct JacobianPoint {
  U256 x;
  U256 y;
  U256 z;

  [[nodiscard]] static JacobianPoint identity() noexcept {
    return JacobianPoint{U256{1}, U256{1}, U256{}};
  }

  [[nodiscard]] bool is_identity() const noexcept { return z.is_zero(); }

  [[nodiscard]] static JacobianPoint from_affine(const AffinePoint& p) noexcept;
  [[nodiscard]] AffinePoint to_affine() const noexcept;
};

[[nodiscard]] JacobianPoint ec_double(const JacobianPoint& p) noexcept;
[[nodiscard]] JacobianPoint ec_add(const JacobianPoint& p,
                                   const JacobianPoint& q) noexcept;
/// Mixed addition p + q with q affine (madd-2007-bl): saves the four
/// field multiplications a full Jacobian add spends on q's Z.
[[nodiscard]] JacobianPoint ec_add_mixed(const JacobianPoint& p,
                                         const AffinePoint& q) noexcept;

/// Scalar multiplication k * P.  Width-5 wNAF over Jacobian odd multiples;
/// k is reduced mod n first (sound: the curve group has prime order n, so
/// k*P == (k mod n)*P for every on-curve P).
[[nodiscard]] JacobianPoint ec_mul(const U256& k, const AffinePoint& p) noexcept;

/// Textbook MSB-first double-and-add.  Slow; retained as the oracle the
/// differential tests check the optimized paths against.
[[nodiscard]] JacobianPoint ec_mul_naive(const U256& k,
                                         const AffinePoint& p) noexcept;

/// k * G via the shared fixed-base generator table.
[[nodiscard]] JacobianPoint ec_mul_base(const U256& k) noexcept;

/// Windowed fixed-base table for one point: table[i][j-1] = j * 16^i * P
/// in affine coordinates (64 windows x 15 entries, ~69 KB).  Build cost is
/// ~1000 point operations plus ONE field inversion (Montgomery batch
/// normalization), amortized across every later multiplication: a mul is
/// then at most 64 mixed additions and zero doublings.  Intended for
/// long-lived bases — G itself (`generator()`, built once per process) and
/// registered daemon public keys (built at key registration).
class FixedBaseTable {
 public:
  static constexpr unsigned kWindowBits = 4;
  static constexpr unsigned kWindows = 256 / kWindowBits;
  static constexpr unsigned kEntries = (1u << kWindowBits) - 1;

  explicit FixedBaseTable(const AffinePoint& base);

  /// k * base (k reduced mod n, as in ec_mul).
  [[nodiscard]] JacobianPoint mul(const U256& k) const noexcept;

  [[nodiscard]] const AffinePoint& base() const noexcept { return base_; }

  /// Raw table entry (j+1) * 16^window * base.  The constant-time comb
  /// (ct_sign.hpp) scans every entry of a window and mask-selects, so it
  /// needs direct affine access rather than mul()'s wNAF-style walk.
  [[nodiscard]] const AffinePoint& entry(unsigned window,
                                         unsigned idx) const noexcept {
    return table_[window][idx];
  }

  /// The process-wide table for G.
  [[nodiscard]] static const FixedBaseTable& generator();

 private:
  friend JacobianPoint ec_mul_add(const U256& a, const U256& b,
                                  const FixedBaseTable& p_table) noexcept;
  friend class EcMsm;

  AffinePoint base_;
  std::array<std::array<AffinePoint, kEntries>, kWindows> table_;
};

/// Fused double-scalar multiplication a*G + b*P in ONE Shamir-interleaved
/// wNAF pass: a single doubling chain serves both scalars (G's odd
/// multiples are a shared precomputed affine set; P's are built per call).
[[nodiscard]] JacobianPoint ec_mul_add(const U256& a, const U256& b,
                                       const AffinePoint& p) noexcept;

/// a*G + b*P with a precomputed table for P: two comb walks, no doubling
/// chain at all (at most 128 mixed additions total).
[[nodiscard]] JacobianPoint ec_mul_add(const U256& a, const U256& b,
                                       const FixedBaseTable& p_table) noexcept;

/// p == q without normalizing p (two field multiplications instead of the
/// field inversion `to_affine` costs).
[[nodiscard]] bool ec_equals_affine(const JacobianPoint& p,
                                    const AffinePoint& q) noexcept;

/// p == q with both sides projective (cross-multiplied, no inversion).
[[nodiscard]] bool ec_equals(const JacobianPoint& p,
                             const JacobianPoint& q) noexcept;

/// Point negation (x, -y).
[[nodiscard]] AffinePoint ec_negate(const AffinePoint& p) noexcept;
[[nodiscard]] JacobianPoint ec_negate(const JacobianPoint& p) noexcept;

// ---- GLV endomorphism (DESIGN.md §15) ----
//
// secp256k1 has j-invariant 0, so it carries the efficiently computable
// endomorphism psi(x, y) = (beta*x, y) = lambda*(x, y), where beta and
// lambda are cube roots of unity mod p and mod n.  Any scalar k splits as
// k = k1 + k2*lambda (mod n) with |k1|, |k2| ~ sqrt(n): a 256-bit
// multiplication becomes two ~129-bit streams over P and psi(P) sharing
// one half-length doubling chain.  The decomposition constants g1, g2 are
// derived from the published lattice basis at startup (div_round), not
// transcribed, and the whole path is differentially tested against
// ec_mul_naive.

struct Glv {
  static const U256& lambda() noexcept;  ///< cube root of 1 mod n
  static const U256& beta() noexcept;    ///< cube root of 1 mod p
};

/// Signed decomposition k == (neg1 ? -k1 : k1) + (neg2 ? -k2 : k2)*lambda
/// (mod n), with k1, k2 < ~2^130.  Requires k < n.
struct GlvSplit {
  U256 k1;
  U256 k2;
  bool neg1 = false;
  bool neg2 = false;
};
[[nodiscard]] GlvSplit glv_split(const U256& k) noexcept;

/// psi(p) = (beta * x, y) == lambda * p.
[[nodiscard]] AffinePoint ec_endomorphism(const AffinePoint& p) noexcept;

/// k * P via the GLV split: two half-width wNAF streams over per-call
/// Jacobian tables for P and psi(P), one ~130-double chain.
[[nodiscard]] JacobianPoint ec_mul_glv(const U256& k,
                                       const AffinePoint& p) noexcept;

/// a*G + b*P with all four half-scalars on one ~130-double chain: the G
/// and psi(G) halves walk static affine tables (width-8 wNAF), the P and
/// psi(P) halves per-call common-Z tables (width-5, every addition mixed).
/// This is the cold-key verification core — no precomputed state for P at
/// all, and no field inversion anywhere on the path.
[[nodiscard]] JacobianPoint ec_mul_add_glv(const U256& a, const U256& b,
                                           const AffinePoint& p) noexcept;

/// Warm-tier table: affine odd multiples {1,3,...,15} of P and psi(P),
/// batch-normalized with ONE field inversion at build.  ~1/60th of a
/// FixedBaseTable's memory; mul_add_base runs every addition mixed.
class GlvTable {
 public:
  static constexpr unsigned kEntries = 8;

  explicit GlvTable(const AffinePoint& base);

  /// a*G + b*base on one half-length chain, all additions mixed.
  [[nodiscard]] JacobianPoint mul_add_base(const U256& a,
                                           const U256& b) const noexcept;

  /// k * base (differential-test hook).
  [[nodiscard]] JacobianPoint mul(const U256& k) const noexcept;

  [[nodiscard]] const AffinePoint& base() const noexcept { return base_; }

 private:
  friend class EcMsm;

  AffinePoint base_;
  std::array<AffinePoint, kEntries> tab_;
  std::array<AffinePoint, kEntries> psi_;
};

/// Multi-scalar multiplication accumulator for batch verification: stage
/// terms, then result() computes the sum with ONE doubling chain shared by
/// every wNAF stream (comb-table terms join chain-free at the end).
///
///   Sum = base*G + sum(comb terms) + sum(glv terms) + sum(naf terms)
class EcMsm {
 public:
  /// += k * G (aggregated; one generator comb walk at result()).
  void add_base(const U256& k);
  /// += k * table.base() via its comb — chain-free (hot-tier keys).
  void add_comb(const FixedBaseTable& table, const U256& k);
  /// += k * table.base() via GLV over affine tables (warm-tier keys).
  void add_glv(const GlvTable& table, const U256& k);
  /// += k * p via GLV over per-call Jacobian tables (cold keys).
  void add_glv(const AffinePoint& p, const U256& k);
  /// += k * p directly — no table build; the right call for short
  /// scalars (batch-verification R terms, |k| ~ 2^64).  Terms whose
  /// reduced scalar fits in 64 bits are held back and, once enough of
  /// them accumulate, summed by Bos–Coster reduction at result();
  /// smaller counts (and wider scalars) walk plain NAF streams.
  void add_naf(const AffinePoint& p, const U256& k);

  [[nodiscard]] JacobianPoint result() const;

 private:
  struct Stream {
    const AffinePoint* atab = nullptr;    ///< odd multiples (mixed adds)...
    const JacobianPoint* jtab = nullptr;  ///< ...or Jacobian (full adds)
    std::array<std::int8_t, 258> d{};
    unsigned len = 0;
  };

  void push_stream(const AffinePoint* atab, const JacobianPoint* jtab,
                   const U256& k, unsigned width, bool negate);

  U256 base_scalar_{};
  std::vector<Stream> streams_;
  std::vector<std::pair<const FixedBaseTable*, U256>> combs_;
  std::deque<AffinePoint> owned_affine_;                  ///< naf term points
  std::deque<std::array<JacobianPoint, 8>> owned_jac_;    ///< cold glv tables
  /// naf terms with scalars < 2^64 — Bos–Coster candidates.
  std::vector<std::pair<std::uint64_t, AffinePoint>> short_terms_;
};

}  // namespace identxx::crypto
