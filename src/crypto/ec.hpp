#pragma once

// secp256k1 group arithmetic (from scratch, on top of U256).
//
// The ident++ design relies on signed delegation: users and third parties
// sign application `requirements` rules which the controller verifies with
// PF+=2's `verify` function.  That needs genuine public-key semantics —
// an offline signer, an online verifier — so we implement a real group:
// the short Weierstrass curve y^2 = x^3 + 7 over F_p,
//   p = 2^256 - 2^32 - 977,
// with the standard base point G of prime order n.
//
// Performance model (DESIGN.md §9): signature verification sits on the
// flow-setup hot path, so scalar multiplication is precomputation-heavy:
// both moduli reduce by folding against 2^256 - modulus (no division),
// variable-base multiplication is width-5 wNAF, fixed bases (G, and any
// long-lived public key) use a 4-bit windowed comb table that eliminates
// the doubling chain entirely, and Schnorr's s*G - e*P is one fused
// double-scalar pass.  The textbook double-and-add survives as
// `ec_mul_naive`, the oracle the differential tests compare against.

#include <array>
#include <optional>

#include "crypto/u256.hpp"

namespace identxx::crypto {

/// Curve constants.
struct Secp256k1 {
  static const U256& p() noexcept;   ///< field prime
  static const U256& n() noexcept;   ///< group order
  static const U256& gx() noexcept;  ///< base point x
  static const U256& gy() noexcept;  ///< base point y
};

// ---- Field arithmetic mod p (specialized reduction for p = 2^256 - c) ----

[[nodiscard]] U256 fp_add(const U256& a, const U256& b) noexcept;
[[nodiscard]] U256 fp_sub(const U256& a, const U256& b) noexcept;
[[nodiscard]] U256 fp_mul(const U256& a, const U256& b) noexcept;
[[nodiscard]] U256 fp_sqr(const U256& a) noexcept;
[[nodiscard]] U256 fp_inv(const U256& a) noexcept;  ///< a^(p-2); a must be nonzero

// ---- Scalar arithmetic mod n (specialized reduction for n = 2^256 - c) ----
//
// n's fold constant c = 2^256 - n is 129 bits, so a 512-bit product
// reduces in a handful of multiply-accumulate folds instead of the
// 512-iteration binary long division `mod(U512, n)` costs.  The generic
// path in u256.cpp remains for arbitrary moduli (and as the scalar
// differential-test oracle).

/// Reduce a full 512-bit value mod n.
[[nodiscard]] U256 sn_reduce(const U512& x) noexcept;
/// Reduce a 256-bit value mod n (a single conditional subtraction).
[[nodiscard]] U256 sn_reduce(const U256& x) noexcept;
[[nodiscard]] U256 sn_add(const U256& a, const U256& b) noexcept;  ///< a,b < n
[[nodiscard]] U256 sn_sub(const U256& a, const U256& b) noexcept;  ///< a,b < n
[[nodiscard]] U256 sn_mul(const U256& a, const U256& b) noexcept;

// ---- Points ----

/// Affine point; `infinity` encodes the group identity.
struct AffinePoint {
  U256 x;
  U256 y;
  bool infinity = false;

  [[nodiscard]] bool operator==(const AffinePoint&) const noexcept = default;

  /// Is (x, y) on y^2 = x^3 + 7?  The identity is on the curve by fiat.
  [[nodiscard]] bool on_curve() const noexcept;

  [[nodiscard]] static AffinePoint identity() noexcept {
    return AffinePoint{U256{}, U256{}, true};
  }

  [[nodiscard]] static AffinePoint generator() noexcept;
};

/// Jacobian projective point (X/Z^2, Y/Z^3); Z == 0 encodes identity.
struct JacobianPoint {
  U256 x;
  U256 y;
  U256 z;

  [[nodiscard]] static JacobianPoint identity() noexcept {
    return JacobianPoint{U256{1}, U256{1}, U256{}};
  }

  [[nodiscard]] bool is_identity() const noexcept { return z.is_zero(); }

  [[nodiscard]] static JacobianPoint from_affine(const AffinePoint& p) noexcept;
  [[nodiscard]] AffinePoint to_affine() const noexcept;
};

[[nodiscard]] JacobianPoint ec_double(const JacobianPoint& p) noexcept;
[[nodiscard]] JacobianPoint ec_add(const JacobianPoint& p,
                                   const JacobianPoint& q) noexcept;
/// Mixed addition p + q with q affine (madd-2007-bl): saves the four
/// field multiplications a full Jacobian add spends on q's Z.
[[nodiscard]] JacobianPoint ec_add_mixed(const JacobianPoint& p,
                                         const AffinePoint& q) noexcept;

/// Scalar multiplication k * P.  Width-5 wNAF over Jacobian odd multiples;
/// k is reduced mod n first (sound: the curve group has prime order n, so
/// k*P == (k mod n)*P for every on-curve P).
[[nodiscard]] JacobianPoint ec_mul(const U256& k, const AffinePoint& p) noexcept;

/// Textbook MSB-first double-and-add.  Slow; retained as the oracle the
/// differential tests check the optimized paths against.
[[nodiscard]] JacobianPoint ec_mul_naive(const U256& k,
                                         const AffinePoint& p) noexcept;

/// k * G via the shared fixed-base generator table.
[[nodiscard]] JacobianPoint ec_mul_base(const U256& k) noexcept;

/// Windowed fixed-base table for one point: table[i][j-1] = j * 16^i * P
/// in affine coordinates (64 windows x 15 entries, ~69 KB).  Build cost is
/// ~1000 point operations plus ONE field inversion (Montgomery batch
/// normalization), amortized across every later multiplication: a mul is
/// then at most 64 mixed additions and zero doublings.  Intended for
/// long-lived bases — G itself (`generator()`, built once per process) and
/// registered daemon public keys (built at key registration).
class FixedBaseTable {
 public:
  static constexpr unsigned kWindowBits = 4;
  static constexpr unsigned kWindows = 256 / kWindowBits;
  static constexpr unsigned kEntries = (1u << kWindowBits) - 1;

  explicit FixedBaseTable(const AffinePoint& base);

  /// k * base (k reduced mod n, as in ec_mul).
  [[nodiscard]] JacobianPoint mul(const U256& k) const noexcept;

  [[nodiscard]] const AffinePoint& base() const noexcept { return base_; }

  /// The process-wide table for G.
  [[nodiscard]] static const FixedBaseTable& generator();

 private:
  friend JacobianPoint ec_mul_add(const U256& a, const U256& b,
                                  const FixedBaseTable& p_table) noexcept;

  AffinePoint base_;
  std::array<std::array<AffinePoint, kEntries>, kWindows> table_;
};

/// Fused double-scalar multiplication a*G + b*P in ONE Shamir-interleaved
/// wNAF pass: a single doubling chain serves both scalars (G's odd
/// multiples are a shared precomputed affine set; P's are built per call).
[[nodiscard]] JacobianPoint ec_mul_add(const U256& a, const U256& b,
                                       const AffinePoint& p) noexcept;

/// a*G + b*P with a precomputed table for P: two comb walks, no doubling
/// chain at all (at most 128 mixed additions total).
[[nodiscard]] JacobianPoint ec_mul_add(const U256& a, const U256& b,
                                       const FixedBaseTable& p_table) noexcept;

/// p == q without normalizing p (two field multiplications instead of the
/// field inversion `to_affine` costs).
[[nodiscard]] bool ec_equals_affine(const JacobianPoint& p,
                                    const AffinePoint& q) noexcept;

/// Point negation (x, -y).
[[nodiscard]] AffinePoint ec_negate(const AffinePoint& p) noexcept;
[[nodiscard]] JacobianPoint ec_negate(const JacobianPoint& p) noexcept;

}  // namespace identxx::crypto
