#pragma once

// secp256k1 group arithmetic (from scratch, on top of U256).
//
// The ident++ design relies on signed delegation: users and third parties
// sign application `requirements` rules which the controller verifies with
// PF+=2's `verify` function.  That needs genuine public-key semantics —
// an offline signer, an online verifier — so we implement a real group:
// the short Weierstrass curve y^2 = x^3 + 7 over F_p,
//   p = 2^256 - 2^32 - 977,
// with the standard base point G of prime order n.

#include <optional>

#include "crypto/u256.hpp"

namespace identxx::crypto {

/// Curve constants.
struct Secp256k1 {
  static const U256& p() noexcept;   ///< field prime
  static const U256& n() noexcept;   ///< group order
  static const U256& gx() noexcept;  ///< base point x
  static const U256& gy() noexcept;  ///< base point y
};

// ---- Field arithmetic mod p (specialized reduction for p = 2^256 - c) ----

[[nodiscard]] U256 fp_add(const U256& a, const U256& b) noexcept;
[[nodiscard]] U256 fp_sub(const U256& a, const U256& b) noexcept;
[[nodiscard]] U256 fp_mul(const U256& a, const U256& b) noexcept;
[[nodiscard]] U256 fp_sqr(const U256& a) noexcept;
[[nodiscard]] U256 fp_inv(const U256& a) noexcept;  ///< a^(p-2); a must be nonzero

// ---- Points ----

/// Affine point; `infinity` encodes the group identity.
struct AffinePoint {
  U256 x;
  U256 y;
  bool infinity = false;

  [[nodiscard]] bool operator==(const AffinePoint&) const noexcept = default;

  /// Is (x, y) on y^2 = x^3 + 7?  The identity is on the curve by fiat.
  [[nodiscard]] bool on_curve() const noexcept;

  [[nodiscard]] static AffinePoint identity() noexcept {
    return AffinePoint{U256{}, U256{}, true};
  }

  [[nodiscard]] static AffinePoint generator() noexcept;
};

/// Jacobian projective point (X/Z^2, Y/Z^3); Z == 0 encodes identity.
struct JacobianPoint {
  U256 x;
  U256 y;
  U256 z;

  [[nodiscard]] static JacobianPoint identity() noexcept {
    return JacobianPoint{U256{1}, U256{1}, U256{}};
  }

  [[nodiscard]] bool is_identity() const noexcept { return z.is_zero(); }

  [[nodiscard]] static JacobianPoint from_affine(const AffinePoint& p) noexcept;
  [[nodiscard]] AffinePoint to_affine() const noexcept;
};

[[nodiscard]] JacobianPoint ec_double(const JacobianPoint& p) noexcept;
[[nodiscard]] JacobianPoint ec_add(const JacobianPoint& p,
                                   const JacobianPoint& q) noexcept;
[[nodiscard]] JacobianPoint ec_add_affine(const JacobianPoint& p,
                                          const AffinePoint& q) noexcept;

/// Scalar multiplication k * P (double-and-add, MSB first).
[[nodiscard]] JacobianPoint ec_mul(const U256& k, const AffinePoint& p) noexcept;

/// k * G.
[[nodiscard]] JacobianPoint ec_mul_base(const U256& k) noexcept;

/// Point negation (x, -y).
[[nodiscard]] AffinePoint ec_negate(const AffinePoint& p) noexcept;

}  // namespace identxx::crypto
