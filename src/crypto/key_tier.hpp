#pragma once

// KeyTierStore: memory-budgeted acceleration tables for registered keys.
//
// A fleet-scale shard tracks 10^6+ principals, but per-key comb tables are
// ~69 KB each — a full-table policy would need tens of gigabytes.  This
// store keeps the *key set* unbounded (a few dozen bytes per key) and
// spends a fixed byte budget on acceleration tables only, chosen by verify
// frequency (DESIGN.md §15):
//
//   hot   — full fixed-base comb table (~69 KB): chain-free verification.
//   warm  — GLV odd-multiples table (~1.3 KB): half-length chain, every
//           addition mixed.
//   cold  — no table: per-call GLV (the ec_mul_add_glv floor).
//
// Registration never evicts: a new key gets an eager hot table only if it
// fits in *free* budget (preserving the register-then-verify fast path of
// small deployments), otherwise it starts cold.  Promotion is driven by
// use(): a key crossing `warm_after` / `hot_after` verifications earns the
// corresponding table, evicting the least-recently-used tables of other
// keys if the budget requires it — so a revocation storm of one-shot
// principals cannot strip the daemons that sign every flow.  Demoted keys
// restart cold (count reset): they must re-earn their table, which keeps a
// ping-ponging pair from thrashing builds.
//
// Byte accounting is explicit: table_bytes() is the exact sum of
// sizeof(FixedBaseTable) / sizeof(GlvTable) held, and never exceeds
// config.table_budget_bytes.

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "crypto/ec.hpp"
#include "crypto/key_id.hpp"

namespace identxx::crypto {

enum class KeyTier : std::uint8_t { kCold = 0, kWarm = 1, kHot = 2 };

struct KeyTierConfig {
  /// Byte ceiling for acceleration tables (keys themselves are unbounded).
  std::size_t table_budget_bytes = 64u << 20;
  /// Verifications before a cold key earns a warm GLV table.
  std::uint64_t warm_after = 2;
  /// Verifications before a warm key earns a hot comb table.
  std::uint64_t hot_after = 8;
};

class KeyTierStore {
 public:
  struct Stats {
    std::uint64_t promotions = 0;     ///< tables built (warm or hot)
    std::uint64_t demotions = 0;      ///< tables evicted to reclaim budget
    std::uint64_t denied_builds = 0;  ///< promotions skipped: cannot fit
  };

  /// Snapshot of a key's acceleration state.  The shared_ptrs keep the
  /// tables alive even if a later use() on another key evicts them (batch
  /// verification touches many keys before multiplying).
  struct Tables {
    KeyTier tier = KeyTier::kCold;
    std::shared_ptr<const FixedBaseTable> hot;
    std::shared_ptr<const GlvTable> warm;
  };

  explicit KeyTierStore(const KeyTierConfig& config = {}) : config_(config) {}

  [[nodiscard]] static constexpr std::size_t hot_table_bytes() noexcept {
    return sizeof(FixedBaseTable);
  }
  [[nodiscard]] static constexpr std::size_t warm_table_bytes() noexcept {
    return sizeof(GlvTable);
  }

  /// Track `point`.  Idempotent.  Builds an eager hot table only when it
  /// fits in free budget — never evicts on behalf of a registration.
  void add(const AffinePoint& point);

  /// Forget `point` and free its tables.
  void remove(const AffinePoint& point);

  [[nodiscard]] bool contains(const AffinePoint& point) const;

  /// Record `uses` verifications against `point` and return its (possibly
  /// just-promoted) tables.  Unknown points are cold and stay untracked.
  Tables use(const AffinePoint& point, std::uint64_t uses = 1);

  /// Current tables without touching counts or recency.
  [[nodiscard]] Tables peek(const AffinePoint& point) const;

  [[nodiscard]] std::size_t table_bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::size_t key_count() const noexcept { return keys_.size(); }
  [[nodiscard]] std::size_t hot_count() const noexcept { return hot_count_; }
  [[nodiscard]] std::size_t warm_count() const noexcept { return warm_count_; }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const KeyTierConfig& config() const noexcept { return config_; }

 private:
  struct Entry {
    std::uint64_t count = 0;
    KeyTier tier = KeyTier::kCold;
    std::shared_ptr<const FixedBaseTable> hot;
    std::shared_ptr<const GlvTable> warm;
    /// Position in lru_ when this entry holds a table.
    std::list<detail::PointId>::iterator lru_pos;
  };
  using Map = std::unordered_map<detail::PointId, Entry, detail::PointIdHash>;

  /// The key's coordinates are the map key itself; rebuild the point.
  [[nodiscard]] static AffinePoint to_point(const detail::PointId& id) noexcept;

  [[nodiscard]] std::size_t entry_bytes(const Entry& e) const noexcept;
  void touch_lru(Map::iterator it);
  void drop_tables(Map::iterator it);
  /// Evict least-recently-used tables (not `keep`) until `needed` extra
  /// bytes fit.  Returns false (leaving the budget as-is) if impossible.
  bool reclaim(std::size_t needed, const detail::PointId& keep);
  void promote(Map::iterator it);

  KeyTierConfig config_;
  Map keys_;
  std::list<detail::PointId> lru_;  ///< front = most recently used
  std::size_t bytes_ = 0;
  std::size_t hot_count_ = 0;
  std::size_t warm_count_ = 0;
  Stats stats_;
};

}  // namespace identxx::crypto
