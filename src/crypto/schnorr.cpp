#include "crypto/schnorr.hpp"

#include <cstring>

#include "crypto/hmac.hpp"
#include "util/error.hpp"
#include "util/hex.hpp"

namespace identxx::crypto {

namespace {

/// Reduce a 32-byte digest modulo the group order.
U256 digest_to_scalar(const Digest& digest) noexcept {
  const U256 raw = U256::from_bytes(std::span<const std::uint8_t, 32>(digest));
  U512 wide;
  for (std::size_t i = 0; i < 4; ++i) wide.w[i] = raw.w[i];
  return mod(wide, Secp256k1::n());
}

/// Challenge e = H(Rx || Ry || Px || Py || m) mod n.
U256 challenge(const AffinePoint& r, const AffinePoint& p,
               std::span<const std::uint8_t> message) noexcept {
  Sha256 h;
  const auto rx = r.x.to_bytes();
  const auto ry = r.y.to_bytes();
  const auto px = p.x.to_bytes();
  const auto py = p.y.to_bytes();
  h.update(std::span(rx.data(), rx.size()));
  h.update(std::span(ry.data(), ry.size()));
  h.update(std::span(px.data(), px.size()));
  h.update(std::span(py.data(), py.size()));
  h.update(message);
  return digest_to_scalar(h.finish());
}

std::span<const std::uint8_t> as_bytes(std::string_view s) noexcept {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

}  // namespace

std::string PublicKey::to_hex() const {
  return point.x.to_hex() + point.y.to_hex();
}

std::optional<PublicKey> PublicKey::from_hex(std::string_view hex) {
  if (hex.size() != 128) return std::nullopt;
  const auto x = U256::from_hex(hex.substr(0, 64));
  const auto y = U256::from_hex(hex.substr(64, 64));
  if (!x || !y) return std::nullopt;
  PublicKey key{AffinePoint{*x, *y, false}};
  if (!key.point.on_curve()) return std::nullopt;
  return key;
}

std::string Signature::to_hex() const {
  return r.x.to_hex() + r.y.to_hex() + s.to_hex();
}

std::optional<Signature> Signature::from_hex(std::string_view hex) {
  if (hex.size() != 192) return std::nullopt;
  const auto rx = U256::from_hex(hex.substr(0, 64));
  const auto ry = U256::from_hex(hex.substr(64, 64));
  const auto s = U256::from_hex(hex.substr(128, 64));
  if (!rx || !ry || !s) return std::nullopt;
  return Signature{AffinePoint{*rx, *ry, false}, *s};
}

PrivateKey PrivateKey::from_seed(std::string_view seed) {
  // Hash the seed with a counter until we land in [1, n-1]; the first
  // iteration succeeds with probability ~1 - 2^-128.
  for (std::uint32_t counter = 0;; ++counter) {
    Sha256 h;
    h.update("identxx-keygen-v1:");
    h.update(seed);
    const std::array<std::uint8_t, 4> ctr{
        static_cast<std::uint8_t>(counter >> 24),
        static_cast<std::uint8_t>(counter >> 16),
        static_cast<std::uint8_t>(counter >> 8),
        static_cast<std::uint8_t>(counter)};
    h.update(std::span(ctr.data(), ctr.size()));
    const U256 candidate = digest_to_scalar(h.finish());
    if (!candidate.is_zero()) {
      return from_scalar(candidate);
    }
  }
}

PrivateKey PrivateKey::from_scalar(const U256& d) {
  if (d.is_zero() || U256::cmp(d, Secp256k1::n()) >= 0) {
    throw CryptoError("private scalar out of range [1, n-1]");
  }
  const AffinePoint pub = ec_mul_base(d).to_affine();
  return PrivateKey(d, PublicKey{pub});
}

Signature PrivateKey::sign(std::string_view message) const {
  return sign(as_bytes(message));
}

Signature PrivateKey::sign(std::span<const std::uint8_t> message) const {
  // Deterministic nonce: k = HMAC(d, msg || counter) mod n, retry on 0.
  const auto d_bytes = d_.to_bytes();
  for (std::uint8_t counter = 0;; ++counter) {
    Sha256 nonce_input;
    nonce_input.update(message);
    nonce_input.update(std::span(&counter, 1));
    const Digest msg_digest = nonce_input.finish();
    const Digest k_digest =
        hmac_sha256(std::span<const std::uint8_t>(d_bytes.data(), d_bytes.size()),
                    std::span<const std::uint8_t>(msg_digest.data(), msg_digest.size()));
    const U256 k = digest_to_scalar(k_digest);
    if (k.is_zero()) continue;

    const AffinePoint r = ec_mul_base(k).to_affine();
    if (r.infinity) continue;
    const U256 e = challenge(r, public_.point, message);
    const U256 ed = mul_mod(e, d_, Secp256k1::n());
    const U256 s = add_mod(k, ed, Secp256k1::n());
    return Signature{r, s};
  }
}

bool verify(const PublicKey& key, std::string_view message,
            const Signature& sig) noexcept {
  return verify(key, as_bytes(message), sig);
}

bool verify(const PublicKey& key, std::span<const std::uint8_t> message,
            const Signature& sig) noexcept {
  if (key.point.infinity || !key.point.on_curve()) return false;
  if (sig.r.infinity || !sig.r.on_curve()) return false;
  if (sig.s.is_zero() || U256::cmp(sig.s, Secp256k1::n()) >= 0) return false;

  const U256 e = challenge(sig.r, key.point, message);
  // Check s*G == R + e*P.
  const AffinePoint lhs = ec_mul_base(sig.s).to_affine();
  const JacobianPoint ep = ec_mul(e, key.point);
  const AffinePoint rhs =
      ec_add(JacobianPoint::from_affine(sig.r), ep).to_affine();
  return lhs == rhs;
}

U256 hash_to_scalar(std::span<const std::uint8_t> data) noexcept {
  return digest_to_scalar(Sha256::hash(data));
}

}  // namespace identxx::crypto
