#include "crypto/schnorr.hpp"

#include <cstring>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "crypto/ct.hpp"
#include "crypto/ct_sign.hpp"
#include "crypto/hmac.hpp"
#include "crypto/key_id.hpp"
#include "util/error.hpp"
#include "util/hex.hpp"

#ifdef IDENTXX_CT_TRACE
#include <cstdlib>
#endif

namespace identxx::crypto {

namespace {

/// Reduce a 32-byte digest modulo the group order (one conditional
/// subtraction — the digest is < 2^256 < 2n).
U256 digest_to_scalar(const Digest& digest) noexcept {
  return sn_reduce(U256::from_bytes(std::span<const std::uint8_t, 32>(digest)));
}

/// Challenge e = H(Rx || Ry || Px || Py || m) mod n.
U256 challenge(const AffinePoint& r, const AffinePoint& p,
               std::span<const std::uint8_t> message) noexcept {
  Sha256 h;
  const auto rx = r.x.to_bytes();
  const auto ry = r.y.to_bytes();
  const auto px = p.x.to_bytes();
  const auto py = p.y.to_bytes();
  h.update(std::span(rx.data(), rx.size()));
  h.update(std::span(ry.data(), ry.size()));
  h.update(std::span(px.data(), px.size()));
  h.update(std::span(py.data(), py.size()));
  h.update(message);
  return digest_to_scalar(h.finish());
}

std::span<const std::uint8_t> as_bytes(std::string_view s) noexcept {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

/// Process-wide LRU of per-key comb tables: public keys are long-lived
/// (daemon/vendor keys baked into policies), so the second verification
/// under a key pays the one-time table build and every later one runs
/// doubling-free.  Bounded so an attacker spraying one-shot keys cannot
/// grow memory; building only on the second sighting keeps one-shot keys
/// from paying the build at all.  Keys are the raw (x, y) limbs — a probe
/// allocates nothing beyond the lock.
///
/// Mutex-guarded: sharded admission domains verify on parallel simulator
/// lanes (DESIGN.md §10).  This lock sits only on the *cold-key* fallback
/// path — domain verifiers hold their own per-key tables and memo
/// (SchnorrVerifier, shard-local), so the decision hot path stays
/// lock-free.
class KeyTableCache {
 public:
  static constexpr std::size_t kCapacity = 64;

  /// The table for `point` if it is already built; otherwise counts the
  /// sighting (building on the second one) and returns null.  Shared
  /// ownership keeps the table alive for the caller even if a concurrent
  /// cold-key burst evicts the entry mid-verification.
  std::shared_ptr<const FixedBaseTable> lookup(const AffinePoint& point) {
    const std::scoped_lock lock(mutex_);
    const detail::PointId id = detail::point_id(point);
    const auto it = index_.find(id);
    if (it != index_.end()) {
      order_.splice(order_.begin(), order_, it->second);
      Entry& entry = *it->second;
      if (!entry.table) {
        entry.table = std::make_shared<const FixedBaseTable>(point);
      }
      return entry.table;
    }
    if (index_.size() >= kCapacity) {
      index_.erase(order_.back().id);
      order_.pop_back();
    }
    order_.push_front(Entry{id, nullptr});
    index_[id] = order_.begin();
    return nullptr;
  }

  static KeyTableCache& instance() {
    static KeyTableCache cache;
    return cache;
  }

 private:
  struct Entry {
    detail::PointId id;
    std::shared_ptr<const FixedBaseTable> table;  ///< null until 2nd sighting
  };
  std::mutex mutex_;
  std::list<Entry> order_;  ///< front = most recently used
  std::unordered_map<detail::PointId, std::list<Entry>::iterator,
                     detail::PointIdHash>
      index_;
};

/// The shared verification core: s*G == R + e*P rewritten as
/// s*G + (n-e)*P == R, evaluated in one pass and compared projectively.
/// Callers have already validated `pub` (on curve, not the identity).
/// `hot` (comb) is preferred over `warm` (GLV odd-multiples); with neither,
/// the per-call GLV path is the floor.
bool verify_core_e(const AffinePoint& pub, const FixedBaseTable* hot,
                   const GlvTable* warm, const U256& e,
                   const Signature& sig) noexcept {
  if (!signature_well_formed(sig)) return false;
  const U256 e_neg =
      e.is_zero() ? U256{} : U256::sub(Secp256k1::n(), e).first;
  const JacobianPoint lhs =
      hot != nullptr    ? ec_mul_add(sig.s, e_neg, *hot)
      : warm != nullptr ? warm->mul_add_base(sig.s, e_neg)
                        : ec_mul_add_glv(sig.s, e_neg, pub);
  return ec_equals_affine(lhs, sig.r);
}

bool verify_core(const AffinePoint& pub, const FixedBaseTable* hot,
                 const GlvTable* warm, std::span<const std::uint8_t> message,
                 const Signature& sig) noexcept {
  if (!signature_well_formed(sig)) return false;
  return verify_core_e(pub, hot, warm, challenge(sig.r, pub, message), sig);
}

}  // namespace

std::string PublicKey::to_hex() const {
  return point.x.to_hex() + point.y.to_hex();
}

std::optional<PublicKey> PublicKey::from_hex(std::string_view hex) {
  if (hex.size() != 128) return std::nullopt;
  const auto x = U256::from_hex(hex.substr(0, 64));
  const auto y = U256::from_hex(hex.substr(64, 64));
  if (!x || !y) return std::nullopt;
  PublicKey key{AffinePoint{*x, *y, false}};
  if (!key.point.on_curve()) return std::nullopt;
  return key;
}

std::string Signature::to_hex() const {
  return r.x.to_hex() + r.y.to_hex() + s.to_hex();
}

std::optional<Signature> Signature::from_hex(std::string_view hex) {
  if (hex.size() != 192) return std::nullopt;
  const auto rx = U256::from_hex(hex.substr(0, 64));
  const auto ry = U256::from_hex(hex.substr(64, 64));
  const auto s = U256::from_hex(hex.substr(128, 64));
  if (!rx || !ry || !s) return std::nullopt;
  return Signature{AffinePoint{*rx, *ry, false}, *s};
}

// ct-lint: secret(seed)
PrivateKey PrivateKey::from_seed(std::string_view seed) {
  // Hash the seed with a counter until we land in [1, n-1]; the first
  // iteration succeeds with probability ~1 - 2^-128.  The digest is the
  // key candidate, so the reduction runs masked (digest_to_scalar_ct).
  for (std::uint32_t counter = 0;; ++counter) {
    Sha256 h;
    h.update("identxx-keygen-v1:");
    h.update(seed);
    const std::array<std::uint8_t, 4> ctr{
        static_cast<std::uint8_t>(counter >> 24),
        static_cast<std::uint8_t>(counter >> 16),
        static_cast<std::uint8_t>(counter >> 8),
        static_cast<std::uint8_t>(counter)};
    h.update(std::span(ctr.data(), ctr.size()));
    Digest digest = h.finish();
    U256 candidate = ct::digest_to_scalar_ct(digest);
    ct::secure_wipe(digest);
    // Retrying on zero is publicly observable by construction (the
    // counter is part of the derivation) and happens with probability
    // ~2^-256.
    if (!ct::declassify(candidate.is_zero())) {  // ct-lint: allow(branch)
      PrivateKey key = from_scalar(candidate);
      ct::secure_wipe(candidate);
      return key;
    }
  }
}

// ct-lint: secret(d) public-return
PrivateKey PrivateKey::from_scalar(const U256& d) {
  // Whether d is a valid key is public: every key this library mints is,
  // and a caller feeding an out-of-range scalar learns only what it
  // already knew.
  if (ct::declassify(d.is_zero() ||
                     U256::cmp(d, Secp256k1::n()) >= 0)) {  // ct-lint: allow(branch, call)
    throw CryptoError("private scalar out of range [1, n-1]");
  }
  // Public-key derivation multiplies G by the private scalar — use the
  // constant-time comb, not the wNAF path.
  const AffinePoint pub = ct::ec_mul_base_ct<std::uint64_t>(d);
  return PrivateKey(d, PublicKey{pub});
}

Signature PrivateKey::sign(std::string_view message) const {
  return sign(as_bytes(message));
}

Signature PrivateKey::sign(std::span<const std::uint8_t> message) const {
  const U256& d = d_.expose_secret();
  const Signature sig =
      ct::schnorr_sign_ct<std::uint64_t>(d, public_.point, message);
#ifdef IDENTXX_CT_TRACE
  // Shadow run in the ctgrind style: the identical kernel instantiated
  // with the taint-tracking limb.  Any secret-dependent branch, shift
  // count, or variable-time operator throws TraceViolation; the result
  // must agree bit-for-bit with production.
  const Signature traced =
      ct::schnorr_sign_ct<ct::TracedLimb>(d, public_.point, message);
  if (!(traced == sig)) std::abort();
#endif
  return sig;
}

bool verify(const PublicKey& key, std::string_view message,
            const Signature& sig) noexcept {
  return verify(key, as_bytes(message), sig);
}

bool verify(const PublicKey& key, std::span<const std::uint8_t> message,
            const Signature& sig) noexcept {
  if (key.point.infinity || !key.point.on_curve()) return false;
  // The cache may allocate (node insertion, table build); verify() is
  // noexcept, so degrade to the tableless pass rather than terminate
  // under memory pressure.
  std::shared_ptr<const FixedBaseTable> table;
  try {
    table = KeyTableCache::instance().lookup(key.point);
  } catch (...) {
    table = nullptr;
  }
  return verify_core(key.point, table.get(), nullptr, message, sig);
}

bool verify(const PrecomputedPublicKey& key, std::string_view message,
            const Signature& sig) noexcept {
  return verify(key, as_bytes(message), sig);
}

bool verify(const PrecomputedPublicKey& key,
            std::span<const std::uint8_t> message,
            const Signature& sig) noexcept {
  const AffinePoint& point = key.key().point;
  if (point.infinity || !point.on_curve()) return false;
  return verify_core(point, &key.table(), nullptr, message, sig);
}

bool verify_tiered(const PublicKey& key, const FixedBaseTable* hot,
                   const GlvTable* warm, std::span<const std::uint8_t> message,
                   const Signature& sig) noexcept {
  if (key.point.infinity || !key.point.on_curve()) return false;
  return verify_core(key.point, hot, warm, message, sig);
}

bool verify_tiered(const PublicKey& key, const FixedBaseTable* hot,
                   const GlvTable* warm, const U256& e,
                   const Signature& sig) noexcept {
  if (key.point.infinity || !key.point.on_curve()) return false;
  return verify_core_e(key.point, hot, warm, e, sig);
}

U256 schnorr_challenge(const AffinePoint& r, const AffinePoint& p,
                       std::span<const std::uint8_t> message) noexcept {
  return challenge(r, p, message);
}

bool signature_well_formed(const Signature& sig) noexcept {
  if (sig.r.infinity || !sig.r.on_curve()) return false;
  if (sig.s.is_zero() || U256::cmp(sig.s, Secp256k1::n()) >= 0) return false;
  return true;
}

U256 hash_to_scalar(std::span<const std::uint8_t> data) noexcept {
  return digest_to_scalar(Sha256::hash(data));
}

}  // namespace identxx::crypto
