#pragma once

// Internal: allocation-free cache identity for a curve point — the raw
// (x, y) limbs plus a mixing hash.  Shared by the per-key table cache
// (schnorr.cpp) and the verification memo (verifier.*) so both layers key
// on the same canonical form.

#include <array>
#include <cstdint>

#include "crypto/ec.hpp"

namespace identxx::crypto::detail {

using PointId = std::array<std::uint64_t, 8>;

struct PointIdHash {
  std::size_t operator()(const PointId& id) const noexcept {
    // EC coordinates are uniformly distributed; one limb from each half
    // is hash enough.
    return static_cast<std::size_t>(id[0] ^ (id[4] * 0x9e3779b97f4a7c15ULL));
  }
};

[[nodiscard]] inline PointId point_id(const AffinePoint& p) noexcept {
  PointId id;
  for (std::size_t i = 0; i < 4; ++i) {
    id[i] = p.x.w[i];
    id[i + 4] = p.y.w[i];
  }
  return id;
}

}  // namespace identxx::crypto::detail
