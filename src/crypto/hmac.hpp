#pragma once

// HMAC-SHA256 (RFC 2104).  Used for deterministic nonce derivation in
// Schnorr signing (RFC 6979-style) so that signatures never depend on an
// external entropy source — a reproducibility requirement for the simulator.

#include <span>
#include <string_view>

#include "crypto/sha256.hpp"

namespace identxx::crypto {

[[nodiscard]] Digest hmac_sha256(std::span<const std::uint8_t> key,
                                 std::span<const std::uint8_t> message) noexcept;

[[nodiscard]] Digest hmac_sha256(std::string_view key,
                                 std::string_view message) noexcept;

}  // namespace identxx::crypto
