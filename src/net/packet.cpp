#include "net/packet.hpp"

#include <cstring>

namespace identxx::net {

namespace {

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u48(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 40; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

[[nodiscard]] std::uint16_t get_u16(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

[[nodiscard]] std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | p[3];
}

[[nodiscard]] std::uint64_t get_u48(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 6; ++i) v = (v << 8) | p[i];
  return v;
}

void patch_u16(std::vector<std::uint8_t>& buf, std::size_t offset,
               std::uint16_t v) {
  buf[offset] = static_cast<std::uint8_t>(v >> 8);
  buf[offset + 1] = static_cast<std::uint8_t>(v);
}

}  // namespace

std::string to_string(IpProto proto) {
  switch (proto) {
    case IpProto::kIcmp: return "icmp";
    case IpProto::kTcp:  return "tcp";
    case IpProto::kUdp:  return "udp";
  }
  return "proto-" + std::to_string(static_cast<int>(proto));
}

std::string FiveTuple::to_string() const {
  return net::to_string(proto) + " " + src_ip.to_string() + ":" +
         std::to_string(src_port) + " -> " + dst_ip.to_string() + ":" +
         std::to_string(dst_port);
}

std::string TenTuple::to_string() const {
  return "[port " + std::to_string(in_port) + " " + src_mac.to_string() +
         " -> " + dst_mac.to_string() + " vlan " + std::to_string(vlan_id) +
         "] " + five_tuple().to_string();
}

std::uint16_t Packet::src_port() const noexcept {
  if (tcp) return tcp->src_port;
  if (udp) return udp->src_port;
  return 0;
}

std::uint16_t Packet::dst_port() const noexcept {
  if (tcp) return tcp->dst_port;
  if (udp) return udp->dst_port;
  return 0;
}

FiveTuple Packet::five_tuple() const noexcept {
  return FiveTuple{ip.src, ip.dst, ip.proto, src_port(), dst_port()};
}

TenTuple Packet::ten_tuple(std::uint16_t in_port) const noexcept {
  return TenTuple{in_port,   eth.src,  eth.dst,  eth.ether_type, 0,
                  ip.src,    ip.dst,   ip.proto, src_port(),     dst_port()};
}

std::string Packet::payload_text() const {
  return std::string(reinterpret_cast<const char*>(payload.data()),
                     payload.size());
}

void Packet::set_payload_text(std::string_view text) {
  payload.assign(text.begin(), text.end());
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) noexcept {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<std::uint32_t>((data[i] << 8) | data[i + 1]);
  }
  if (i < data.size()) {
    sum += static_cast<std::uint32_t>(data[i] << 8);
  }
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(~sum);
}

std::vector<std::uint8_t> Packet::to_bytes() const {
  std::vector<std::uint8_t> out;
  const std::size_t transport_size =
      tcp ? TcpHeader::kSize : (udp ? UdpHeader::kSize : 0);
  out.reserve(EthernetHeader::kSize + Ipv4Header::kSize + transport_size +
              payload.size());

  // Ethernet.
  put_u48(out, eth.dst.value());
  put_u48(out, eth.src.value());
  put_u16(out, eth.ether_type);

  // IPv4.
  const std::size_t ip_offset = out.size();
  const auto total_length = static_cast<std::uint16_t>(
      Ipv4Header::kSize + transport_size + payload.size());
  put_u8(out, 0x45);  // version 4, IHL 5
  put_u8(out, ip.dscp);
  put_u16(out, total_length);
  put_u16(out, ip.identification);
  put_u16(out, 0);  // flags + fragment offset
  put_u8(out, ip.ttl);
  put_u8(out, static_cast<std::uint8_t>(ip.proto));
  put_u16(out, 0);  // checksum placeholder
  put_u32(out, ip.src.value());
  put_u32(out, ip.dst.value());
  const std::uint16_t ip_csum = internet_checksum(
      std::span(out.data() + ip_offset, Ipv4Header::kSize));
  patch_u16(out, ip_offset + 10, ip_csum);

  // Transport.
  if (tcp) {
    const std::size_t tcp_offset = out.size();
    put_u16(out, tcp->src_port);
    put_u16(out, tcp->dst_port);
    put_u32(out, tcp->seq);
    put_u32(out, tcp->ack);
    put_u8(out, 0x50);  // data offset 5
    put_u8(out, tcp->flags);
    put_u16(out, tcp->window);
    put_u16(out, 0);  // checksum placeholder
    put_u16(out, 0);  // urgent pointer
    out.insert(out.end(), payload.begin(), payload.end());
    // TCP checksum over pseudo-header + segment.
    std::vector<std::uint8_t> pseudo;
    pseudo.reserve(12 + TcpHeader::kSize + payload.size());
    put_u32(pseudo, ip.src.value());
    put_u32(pseudo, ip.dst.value());
    put_u8(pseudo, 0);
    put_u8(pseudo, static_cast<std::uint8_t>(ip.proto));
    put_u16(pseudo, static_cast<std::uint16_t>(TcpHeader::kSize + payload.size()));
    pseudo.insert(pseudo.end(), out.begin() + static_cast<std::ptrdiff_t>(tcp_offset),
                  out.end());
    patch_u16(out, tcp_offset + 16, internet_checksum(pseudo));
  } else if (udp) {
    const std::size_t udp_offset = out.size();
    const auto udp_length =
        static_cast<std::uint16_t>(UdpHeader::kSize + payload.size());
    put_u16(out, udp->src_port);
    put_u16(out, udp->dst_port);
    put_u16(out, udp_length);
    put_u16(out, 0);  // checksum placeholder
    out.insert(out.end(), payload.begin(), payload.end());
    std::vector<std::uint8_t> pseudo;
    pseudo.reserve(12 + udp_length);
    put_u32(pseudo, ip.src.value());
    put_u32(pseudo, ip.dst.value());
    put_u8(pseudo, 0);
    put_u8(pseudo, static_cast<std::uint8_t>(ip.proto));
    put_u16(pseudo, udp_length);
    pseudo.insert(pseudo.end(), out.begin() + static_cast<std::ptrdiff_t>(udp_offset),
                  out.end());
    patch_u16(out, udp_offset + 6, internet_checksum(pseudo));
  } else {
    out.insert(out.end(), payload.begin(), payload.end());
  }
  return out;
}

std::optional<Packet> Packet::from_bytes(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < EthernetHeader::kSize + Ipv4Header::kSize) {
    return std::nullopt;
  }
  Packet pkt;
  pkt.eth.dst = MacAddress(get_u48(bytes.data()));
  pkt.eth.src = MacAddress(get_u48(bytes.data() + 6));
  pkt.eth.ether_type = get_u16(bytes.data() + 12);
  if (pkt.eth.ether_type != 0x0800) return std::nullopt;  // IPv4 only

  const std::uint8_t* ip_start = bytes.data() + EthernetHeader::kSize;
  if ((ip_start[0] >> 4) != 4) return std::nullopt;
  const std::size_t ihl = static_cast<std::size_t>(ip_start[0] & 0x0f) * 4;
  if (ihl < Ipv4Header::kSize) return std::nullopt;
  if (bytes.size() < EthernetHeader::kSize + ihl) return std::nullopt;
  if (internet_checksum(std::span(ip_start, ihl)) != 0) return std::nullopt;

  pkt.ip.dscp = ip_start[1];
  const std::uint16_t total_length = get_u16(ip_start + 2);
  pkt.ip.identification = get_u16(ip_start + 4);
  pkt.ip.ttl = ip_start[8];
  pkt.ip.proto = static_cast<IpProto>(ip_start[9]);
  pkt.ip.src = Ipv4Address(get_u32(ip_start + 12));
  pkt.ip.dst = Ipv4Address(get_u32(ip_start + 16));

  if (total_length < ihl ||
      bytes.size() < EthernetHeader::kSize + total_length) {
    return std::nullopt;
  }
  const std::uint8_t* l4 = ip_start + ihl;
  const std::size_t l4_length = total_length - ihl;

  if (pkt.ip.proto == IpProto::kTcp) {
    if (l4_length < TcpHeader::kSize) return std::nullopt;
    TcpHeader tcp;
    tcp.src_port = get_u16(l4);
    tcp.dst_port = get_u16(l4 + 2);
    tcp.seq = get_u32(l4 + 4);
    tcp.ack = get_u32(l4 + 8);
    const std::size_t data_offset = static_cast<std::size_t>(l4[12] >> 4) * 4;
    if (data_offset < TcpHeader::kSize || data_offset > l4_length) {
      return std::nullopt;
    }
    tcp.flags = l4[13];
    tcp.window = get_u16(l4 + 14);
    pkt.tcp = tcp;
    pkt.payload.assign(l4 + data_offset, l4 + l4_length);
  } else if (pkt.ip.proto == IpProto::kUdp) {
    if (l4_length < UdpHeader::kSize) return std::nullopt;
    UdpHeader udp;
    udp.src_port = get_u16(l4);
    udp.dst_port = get_u16(l4 + 2);
    const std::uint16_t udp_length = get_u16(l4 + 4);
    if (udp_length < UdpHeader::kSize || udp_length > l4_length) {
      return std::nullopt;
    }
    pkt.udp = udp;
    pkt.payload.assign(l4 + UdpHeader::kSize, l4 + udp_length);
  } else {
    pkt.payload.assign(l4, l4 + l4_length);
  }
  return pkt;
}

std::string Packet::to_string() const {
  std::string out = five_tuple().to_string();
  if (tcp) {
    out += " [";
    if (tcp->flags & TcpFlags::kSyn) out += 'S';
    if (tcp->flags & TcpFlags::kAck) out += 'A';
    if (tcp->flags & TcpFlags::kFin) out += 'F';
    if (tcp->flags & TcpFlags::kRst) out += 'R';
    if (tcp->flags & TcpFlags::kPsh) out += 'P';
    out += ']';
  }
  out += " payload=" + std::to_string(payload.size()) + "B";
  return out;
}

Packet make_tcp_packet(MacAddress src_mac, MacAddress dst_mac,
                       Ipv4Address src_ip, Ipv4Address dst_ip,
                       std::uint16_t src_port, std::uint16_t dst_port,
                       std::string_view payload, std::uint8_t flags) {
  Packet pkt;
  pkt.eth = EthernetHeader{dst_mac, src_mac, 0x0800};
  pkt.ip.proto = IpProto::kTcp;
  pkt.ip.src = src_ip;
  pkt.ip.dst = dst_ip;
  TcpHeader tcp;
  tcp.src_port = src_port;
  tcp.dst_port = dst_port;
  tcp.flags = flags;
  pkt.tcp = tcp;
  pkt.set_payload_text(payload);
  return pkt;
}

Packet make_udp_packet(MacAddress src_mac, MacAddress dst_mac,
                       Ipv4Address src_ip, Ipv4Address dst_ip,
                       std::uint16_t src_port, std::uint16_t dst_port,
                       std::string_view payload) {
  Packet pkt;
  pkt.eth = EthernetHeader{dst_mac, src_mac, 0x0800};
  pkt.ip.proto = IpProto::kUdp;
  pkt.ip.src = src_ip;
  pkt.ip.dst = dst_ip;
  UdpHeader udp;
  udp.src_port = src_port;
  udp.dst_port = dst_port;
  pkt.udp = udp;
  pkt.set_payload_text(payload);
  return pkt;
}

}  // namespace identxx::net
