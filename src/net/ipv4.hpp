#pragma once

// IPv4 addresses, CIDR prefixes and MAC addresses.
//
// PF+=2 policy tables (`table <lan> { 192.168.0.0/24 }`) and the ident++
// wire format both traffic in these types.

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace identxx::net {

/// IPv4 address stored host-order for arithmetic; renders dotted-quad.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t value) noexcept : value_(value) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d) noexcept
      : value_((static_cast<std::uint32_t>(a) << 24) |
               (static_cast<std::uint32_t>(b) << 16) |
               (static_cast<std::uint32_t>(c) << 8) | d) {}

  /// Parse dotted-quad ("192.168.0.1").  Rejects anything else.
  [[nodiscard]] static std::optional<Ipv4Address> parse(std::string_view text) noexcept;

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] constexpr auto operator<=>(const Ipv4Address&) const noexcept = default;

 private:
  std::uint32_t value_ = 0;
};

/// CIDR prefix, e.g. 192.168.0.0/24.  A /32 is a single host.
class Cidr {
 public:
  constexpr Cidr() = default;
  /// Construct; the network address is masked down (10.0.0.7/8 -> 10.0.0.0/8).
  constexpr Cidr(Ipv4Address network, unsigned prefix_length) noexcept
      : network_(Ipv4Address(prefix_length == 0
                                 ? 0
                                 : network.value() & mask_for(prefix_length))),
        prefix_length_(prefix_length > 32 ? 32 : prefix_length) {}

  /// Parse "a.b.c.d/len" or bare "a.b.c.d" (treated as /32).
  [[nodiscard]] static std::optional<Cidr> parse(std::string_view text) noexcept;

  [[nodiscard]] constexpr bool contains(Ipv4Address addr) const noexcept {
    if (prefix_length_ == 0) return true;
    const std::uint32_t mask = mask_for(prefix_length_);
    return (addr.value() & mask) == network_.value();
  }

  [[nodiscard]] constexpr Ipv4Address network() const noexcept { return network_; }
  [[nodiscard]] constexpr unsigned prefix_length() const noexcept { return prefix_length_; }
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] constexpr bool operator==(const Cidr&) const noexcept = default;

 private:
  [[nodiscard]] static constexpr std::uint32_t mask_for(unsigned len) noexcept {
    return len == 0 ? 0 : ~std::uint32_t{0} << (32 - (len > 32 ? 32 : len));
  }
  Ipv4Address network_;
  unsigned prefix_length_ = 0;
};

/// 48-bit MAC address.
class MacAddress {
 public:
  constexpr MacAddress() = default;
  constexpr explicit MacAddress(std::uint64_t value) noexcept
      : value_(value & 0xffffffffffffULL) {}

  /// Parse "aa:bb:cc:dd:ee:ff".
  [[nodiscard]] static std::optional<MacAddress> parse(std::string_view text) noexcept;

  /// Deterministic MAC for a simulated node id (locally administered).
  [[nodiscard]] static constexpr MacAddress for_node(std::uint32_t node_id) noexcept {
    return MacAddress(0x020000000000ULL | node_id);
  }

  [[nodiscard]] constexpr std::uint64_t value() const noexcept { return value_; }
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] constexpr auto operator<=>(const MacAddress&) const noexcept = default;

 private:
  std::uint64_t value_ = 0;
};

}  // namespace identxx::net

template <>
struct std::hash<identxx::net::Ipv4Address> {
  std::size_t operator()(const identxx::net::Ipv4Address& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};

template <>
struct std::hash<identxx::net::MacAddress> {
  std::size_t operator()(const identxx::net::MacAddress& m) const noexcept {
    return std::hash<std::uint64_t>{}(m.value());
  }
};
