#include "net/ipv4.hpp"

#include <array>

#include "util/strings.hpp"

namespace identxx::net {

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) noexcept {
  const auto parts = util::split(text, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t value = 0;
  for (const auto part : parts) {
    if (part.empty() || part.size() > 3) return std::nullopt;
    const auto octet = util::parse_u64(part);
    if (!octet || *octet > 255) return std::nullopt;
    value = (value << 8) | static_cast<std::uint32_t>(*octet);
  }
  return Ipv4Address(value);
}

std::string Ipv4Address::to_string() const {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    out += std::to_string((value_ >> shift) & 0xff);
    if (shift > 0) out += '.';
  }
  return out;
}

std::optional<Cidr> Cidr::parse(std::string_view text) noexcept {
  const auto [addr_part, len_part] = util::split_once(text, '/');
  const auto addr = Ipv4Address::parse(addr_part);
  if (!addr) return std::nullopt;
  if (!len_part) return Cidr(*addr, 32);
  const auto len = util::parse_u64(*len_part);
  if (!len || *len > 32) return std::nullopt;
  return Cidr(*addr, static_cast<unsigned>(*len));
}

std::string Cidr::to_string() const {
  return network_.to_string() + "/" + std::to_string(prefix_length_);
}

std::optional<MacAddress> MacAddress::parse(std::string_view text) noexcept {
  const auto parts = util::split(text, ':');
  if (parts.size() != 6) return std::nullopt;
  std::uint64_t value = 0;
  for (const auto part : parts) {
    if (part.size() != 2) return std::nullopt;
    int byte = 0;
    for (char c : part) {
      int nibble;
      if (c >= '0' && c <= '9') nibble = c - '0';
      else if (c >= 'a' && c <= 'f') nibble = c - 'a' + 10;
      else if (c >= 'A' && c <= 'F') nibble = c - 'A' + 10;
      else return std::nullopt;
      byte = (byte << 4) | nibble;
    }
    value = (value << 8) | static_cast<std::uint64_t>(byte);
  }
  return MacAddress(value);
}

std::string MacAddress::to_string() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(17);
  for (int i = 5; i >= 0; --i) {
    const auto byte = static_cast<std::uint8_t>(value_ >> (i * 8));
    out += kDigits[byte >> 4];
    out += kDigits[byte & 0xf];
    if (i > 0) out += ':';
  }
  return out;
}

}  // namespace identxx::net
