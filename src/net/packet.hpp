#pragma once

// Packet model: Ethernet / IPv4 / TCP|UDP headers plus payload, with real
// wire serialization (big-endian, internet checksums) and parsing.
//
// The simulator mostly passes Packet values around in structured form, but
// serialization is load-bearing: ident++ query/response packets travel as
// TCP payloads, and tests round-trip every header through bytes.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/flow.hpp"
#include "net/ipv4.hpp"

namespace identxx::net {

struct EthernetHeader {
  MacAddress dst;
  MacAddress src;
  std::uint16_t ether_type = 0x0800;

  static constexpr std::size_t kSize = 14;
  [[nodiscard]] bool operator==(const EthernetHeader&) const noexcept = default;
};

struct Ipv4Header {
  std::uint8_t dscp = 0;
  std::uint16_t identification = 0;
  std::uint8_t ttl = 64;
  IpProto proto = IpProto::kTcp;
  Ipv4Address src;
  Ipv4Address dst;
  // total_length and checksum are computed at serialization time.

  static constexpr std::size_t kSize = 20;  // no options
  [[nodiscard]] bool operator==(const Ipv4Header&) const noexcept = default;
};

/// TCP flag bits.
struct TcpFlags {
  static constexpr std::uint8_t kFin = 0x01;
  static constexpr std::uint8_t kSyn = 0x02;
  static constexpr std::uint8_t kRst = 0x04;
  static constexpr std::uint8_t kPsh = 0x08;
  static constexpr std::uint8_t kAck = 0x10;
};

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = TcpFlags::kSyn;
  std::uint16_t window = 65535;

  static constexpr std::size_t kSize = 20;  // no options
  [[nodiscard]] bool operator==(const TcpHeader&) const noexcept = default;
};

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;

  static constexpr std::size_t kSize = 8;
  [[nodiscard]] bool operator==(const UdpHeader&) const noexcept = default;
};

/// A full frame.  Exactly one of `tcp` / `udp` is set for TCP/UDP packets;
/// neither for other IP protocols.
struct Packet {
  EthernetHeader eth;
  Ipv4Header ip;
  std::optional<TcpHeader> tcp;
  std::optional<UdpHeader> udp;
  std::vector<std::uint8_t> payload;

  [[nodiscard]] bool operator==(const Packet&) const noexcept = default;

  /// Transport source/destination ports (0 when not TCP/UDP).
  [[nodiscard]] std::uint16_t src_port() const noexcept;
  [[nodiscard]] std::uint16_t dst_port() const noexcept;

  /// Flow identity of this packet.
  [[nodiscard]] FiveTuple five_tuple() const noexcept;

  /// OpenFlow match fields; `in_port` supplied by the receiving switch.
  [[nodiscard]] TenTuple ten_tuple(std::uint16_t in_port) const noexcept;

  /// Payload interpreted as text (for ident++ wire messages).
  [[nodiscard]] std::string payload_text() const;
  void set_payload_text(std::string_view text);

  /// Serialize to wire bytes, computing lengths and checksums.
  [[nodiscard]] std::vector<std::uint8_t> to_bytes() const;

  /// Parse wire bytes; verifies structure and the IPv4 header checksum.
  /// Returns nullopt on truncation, bad version, or checksum mismatch.
  [[nodiscard]] static std::optional<Packet> from_bytes(
      std::span<const std::uint8_t> bytes);

  [[nodiscard]] std::string to_string() const;
};

/// Builders for the common cases.
[[nodiscard]] Packet make_tcp_packet(MacAddress src_mac, MacAddress dst_mac,
                                     Ipv4Address src_ip, Ipv4Address dst_ip,
                                     std::uint16_t src_port,
                                     std::uint16_t dst_port,
                                     std::string_view payload = {},
                                     std::uint8_t flags = TcpFlags::kSyn);

[[nodiscard]] Packet make_udp_packet(MacAddress src_mac, MacAddress dst_mac,
                                     Ipv4Address src_ip, Ipv4Address dst_ip,
                                     std::uint16_t src_port,
                                     std::uint16_t dst_port,
                                     std::string_view payload = {});

/// RFC 1071 internet checksum over `data` (pads odd length with zero).
[[nodiscard]] std::uint16_t internet_checksum(
    std::span<const std::uint8_t> data) noexcept;

}  // namespace identxx::net
