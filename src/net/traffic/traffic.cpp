#include "net/traffic/traffic.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace identxx::net::traffic {

namespace {

Model parse_model(std::string_view name) {
  if (util::iequals(name, "single")) return Model::kSingle;
  if (util::iequals(name, "cbr")) return Model::kCbr;
  if (util::iequals(name, "onoff") || util::iequals(name, "on-off")) {
    return Model::kOnOff;
  }
  if (util::iequals(name, "pareto")) return Model::kPareto;
  if (util::iequals(name, "aimd")) return Model::kAimd;
  throw Error("unknown traffic model '" + std::string(name) + "'");
}

std::uint64_t parse_count(std::string_view key, std::string_view value) {
  const auto n = util::parse_u64(value);
  if (!n) {
    throw Error("traffic " + std::string(key) + ": invalid value '" +
                std::string(value) + "'");
  }
  return *n;
}

double parse_real(std::string_view key, std::string_view value) {
  try {
    std::size_t used = 0;
    const double d = std::stod(std::string(value), &used);
    if (used != value.size() || !(d > 0.0)) throw std::invalid_argument("");
    return d;
  } catch (const std::exception&) {
    throw Error("traffic " + std::string(key) + ": invalid value '" +
                std::string(value) + "'");
  }
}

}  // namespace

std::string to_string(Model model) {
  switch (model) {
    case Model::kSingle: return "single";
    case Model::kCbr: return "cbr";
    case Model::kOnOff: return "onoff";
    case Model::kPareto: return "pareto";
    case Model::kAimd: return "aimd";
  }
  return "?";
}

TrafficSpec TrafficSpec::parse(std::string_view text) {
  TrafficSpec spec;
  bool first = true;
  for (const auto token : util::split(text, ',')) {
    const auto field = util::trim(token);
    if (field.empty()) continue;
    if (first) {
      spec.model = parse_model(field);
      first = false;
      continue;
    }
    const auto [key, value] = util::split_once(field, '=');
    if (!value) {
      throw Error("traffic: expected key=value, got '" + std::string(field) +
                  "'");
    }
    if (key == "packets") {
      spec.packets = std::max<std::uint64_t>(1, parse_count(key, *value));
    } else if (key == "rate") {
      spec.rate_pps = parse_count(key, *value);
      if (spec.rate_pps == 0) throw Error("traffic rate: must be nonzero");
    } else if (key == "payload") {
      spec.payload_bytes =
          static_cast<std::uint32_t>(parse_count(key, *value));
    } else if (key == "start_us") {
      spec.start_delay = static_cast<sim::SimTime>(parse_count(key, *value)) *
                         sim::kMicrosecond;
    } else if (key == "on_us") {
      spec.on_time = static_cast<sim::SimTime>(parse_count(key, *value)) *
                     sim::kMicrosecond;
    } else if (key == "off_us") {
      spec.off_time = static_cast<sim::SimTime>(parse_count(key, *value)) *
                      sim::kMicrosecond;
    } else if (key == "shape") {
      spec.pareto_shape = parse_real(key, *value);
    } else if (key == "mean") {
      spec.pareto_mean = parse_real(key, *value);
    } else if (key == "window") {
      spec.aimd_window = parse_real(key, *value);
    } else if (key == "rtt_us") {
      spec.aimd_rtt = static_cast<sim::SimTime>(parse_count(key, *value)) *
                      sim::kMicrosecond;
      if (spec.aimd_rtt <= 0) throw Error("traffic rtt_us: must be nonzero");
    } else {
      throw Error("traffic: unknown key '" + std::string(key) + "'");
    }
  }
  if (first) throw Error("traffic: empty spec");
  return spec;
}

FlowDriver::FlowDriver(sim::Simulator& sim, host::Host& src,
                       const host::Host& dst, net::FiveTuple flow,
                       TrafficSpec spec, std::uint64_t seed)
    : sim_(sim),
      src_(src),
      dst_(dst),
      flow_(flow),
      spec_(spec),
      rng_(seed),
      payload_(spec.payload_bytes, 'x'),
      cwnd_(std::max(1.0, spec.aimd_window)) {
  switch (spec_.model) {
    case Model::kSingle:
      total_ = 1;
      break;
    case Model::kPareto: {
      // Bounded Pareto flow size: mean `pareto_mean`, tail index
      // `pareto_shape` — most flows are mice, a few are elephants.
      const double shape = std::max(1.01, spec_.pareto_shape);
      const double xm = spec_.pareto_mean * (shape - 1.0) / shape;
      const double u = std::max(rng_.next_double(), 1e-12);
      const double size = xm / std::pow(u, 1.0 / shape);
      total_ = std::clamp<std::uint64_t>(
          static_cast<std::uint64_t>(std::llround(size)), 1, 1'000'000);
      break;
    }
    default:
      total_ = spec_.packets;
      break;
  }
}

void FlowDriver::start() {
  stats_.packets_sent = 1;  // the connect-time SYN from start_flow
  planned_ = 1;
  if (total_ <= 1) {
    stats_.final_window = cwnd_;
    return;
  }
  start_time_ = sim_.now() + spec_.start_delay;
  if (spec_.model == Model::kAimd) {
    sim_.schedule_at(start_time_, [this]() { run_aimd_epoch(); });
    return;
  }
  next_offset_ = 0;
  schedule_paced();
}

void FlowDriver::emit_one() {
  ++stats_.packets_sent;
  src_.send_flow_packet(flow_, payload_, net::TcpFlags::kAck);
}

void FlowDriver::schedule_paced() {
  if (planned_ >= total_) return;
  ++planned_;
  const sim::SimTime interval = std::max<sim::SimTime>(
      1, sim::kSecond / static_cast<sim::SimTime>(spec_.rate_pps));
  sim::SimTime offset = next_offset_;
  if (spec_.model == Model::kOnOff && spec_.off_time > 0) {
    // Emissions only land inside the on-phase of each duty cycle.
    const sim::SimTime cycle = spec_.on_time + spec_.off_time;
    const sim::SimTime pos = offset % cycle;
    if (pos >= spec_.on_time) offset += cycle - pos;
  }
  next_offset_ = offset + interval;
  sim_.schedule_at(start_time_ + offset, [this]() {
    emit_one();
    schedule_paced();
  });
}

void FlowDriver::run_aimd_epoch() {
  // ACK accounting, two epochs in arrears: everything planned before the
  // epoch-before-last has had two full control intervals to drain the
  // queues, so a shortfall there is loss, not delay.  `lost_seen_` makes
  // the signal edge-triggered — only *new* losses halve the window.
  const std::uint64_t delivered = dst_.delivered_count(flow_);
  stats_.packets_acked = delivered;
  const std::uint64_t lost =
      expected_lag2_ > delivered ? expected_lag2_ - delivered : 0;
  if (lost > lost_seen_) {
    cwnd_ = std::max(1.0, cwnd_ / 2.0);
    ++stats_.loss_events;
    lost_seen_ = lost;
  } else if (epoch_ > 0) {
    cwnd_ += 1.0;
  }
  expected_lag2_ = expected_lag1_;
  expected_lag1_ = planned_;
  ++epoch_;
  if (planned_ >= total_) {
    stats_.final_window = cwnd_;
    return;
  }
  const auto window = static_cast<std::uint64_t>(std::llround(cwnd_));
  const std::uint64_t burst =
      std::min(total_ - planned_, std::max<std::uint64_t>(1, window));
  planned_ += burst;
  // Pace the window evenly across the epoch rather than bursting at the
  // boundary; the +1 keeps the last packet clear of the next epoch.
  const sim::SimTime gap =
      spec_.aimd_rtt / static_cast<sim::SimTime>(burst + 1);
  for (std::uint64_t i = 0; i < burst; ++i) {
    sim_.schedule_after(static_cast<sim::SimTime>(i) * gap,
                        [this]() { emit_one(); });
  }
  sim_.schedule_after(spec_.aimd_rtt, [this]() { run_aimd_epoch(); });
}

}  // namespace identxx::net::traffic
