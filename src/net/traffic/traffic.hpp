#pragma once

// Pluggable traffic-model library (DESIGN.md §12).
//
// The paper's evaluation drives one hand-rolled packet per flow; this
// library generates the load shapes the congestion experiments need on
// top of the same deterministic simulator:
//
//   * single — the historical one-SYN-per-flow behaviour (default)
//   * cbr    — constant bit rate: fixed packet count at a fixed rate
//   * onoff  — CBR gated by an on/off duty cycle (flash-crowd bursts)
//   * pareto — heavy-tailed flow size drawn from a bounded Pareto
//              (elephant/mice mixes), emitted at a fixed rate
//   * aimd   — closed loop: a windowed sender that observes deliveries at
//              the destination and halves its window on detected loss,
//              increasing additively otherwise (TCP-flavoured backoff)
//
// Every generator is a chain of simulator events on the global lane, so
// emissions are bit-identical at any shard/worker count.  All randomness
// (the Pareto size draw) comes from a caller-provided SplitMix64 seed.
//
// Specs parse from compact text — "cbr,packets=64,rate=20000" — used
// verbatim by the scenario `traffic` directive and identxx_sim --traffic.

#include <cstdint>
#include <string>
#include <string_view>

#include "host/host.hpp"
#include "net/flow.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace identxx::net::traffic {

enum class Model { kSingle, kCbr, kOnOff, kPareto, kAimd };

[[nodiscard]] std::string to_string(Model model);

/// One flow's traffic shape.  Defaults reproduce the idealized behaviour:
/// Model::kSingle sends nothing beyond the flow's connect-time SYN.
struct TrafficSpec {
  Model model = Model::kSingle;
  /// Total payload packets including the connect-time SYN (the per-flow
  /// draw for kPareto, which ignores this field).
  std::uint64_t packets = 1;
  std::uint64_t rate_pps = 10'000;  ///< emission rate while sending
  std::uint32_t payload_bytes = 512;
  sim::SimTime start_delay = 0;  ///< pause between SYN and paced emission
  // on-off duty cycle
  sim::SimTime on_time = 200 * sim::kMicrosecond;
  sim::SimTime off_time = 200 * sim::kMicrosecond;
  // bounded Pareto flow-size mix
  double pareto_shape = 1.5;
  double pareto_mean = 32.0;  ///< mean flow size in packets
  // closed-loop AIMD
  double aimd_window = 2.0;  ///< initial window, packets per control epoch
  sim::SimTime aimd_rtt = 1 * sim::kMillisecond;  ///< control epoch length

  /// Parse "model[,key=value...]" — keys: packets, rate, payload,
  /// start_us, on_us, off_us, shape, mean, window, rtt_us.  Throws
  /// identxx::Error on unknown models/keys or unparsable values.
  [[nodiscard]] static TrafficSpec parse(std::string_view text);
};

struct FlowDriverStats {
  std::uint64_t packets_sent = 0;  ///< includes the connect-time SYN
  std::uint64_t packets_acked = 0;  ///< kAimd: deliveries observed at dst
  std::uint64_t loss_events = 0;    ///< kAimd: window halvings
  double final_window = 0.0;        ///< kAimd: window when sending finished
};

/// Drives one flow's packet emissions according to a TrafficSpec.  The
/// flow's first packet (the SYN from Network::start_flow) must already be
/// sent; start() schedules the remainder.  The driver must outlive the
/// simulation run.
class FlowDriver {
 public:
  FlowDriver(sim::Simulator& sim, host::Host& src, const host::Host& dst,
             net::FiveTuple flow, TrafficSpec spec, std::uint64_t seed);

  /// Schedule this flow's emissions, starting at the current simulated
  /// time plus spec.start_delay.  Call at most once, outside event
  /// execution (events chain on the global lane).
  void start();

  [[nodiscard]] const net::FiveTuple& flow() const noexcept { return flow_; }
  [[nodiscard]] const TrafficSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::uint64_t total_packets() const noexcept { return total_; }
  [[nodiscard]] const FlowDriverStats& stats() const noexcept { return stats_; }

 private:
  void emit_one();
  /// cbr/onoff/pareto: emit, then schedule the next emission (skipping
  /// off-phase windows for kOnOff).
  void schedule_paced();
  /// kAimd control epoch: account ACKs, adapt the window, pace one
  /// window's worth of packets over the epoch.
  void run_aimd_epoch();

  sim::Simulator& sim_;
  host::Host& src_;
  const host::Host& dst_;
  net::FiveTuple flow_;
  TrafficSpec spec_;
  util::SplitMix64 rng_;
  std::string payload_;

  std::uint64_t total_ = 1;    ///< packets to send overall (incl. SYN)
  std::uint64_t planned_ = 1;  ///< packets sent or already scheduled
  sim::SimTime start_time_ = 0;
  sim::SimTime next_offset_ = 0;  ///< paced models: next emission offset
  // AIMD state: deliveries are checked two epochs in arrears so queueing
  // delay is not misread as loss.
  double cwnd_ = 1.0;
  std::uint64_t expected_lag1_ = 0;
  std::uint64_t expected_lag2_ = 0;
  std::uint64_t lost_seen_ = 0;
  std::uint32_t epoch_ = 0;

  FlowDriverStats stats_;
};

}  // namespace identxx::net::traffic
