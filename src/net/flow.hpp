#pragma once

// Flow identifiers.
//
// The paper uses two granularities (§2, §3.1):
//  * ident++'s 5-tuple {src ip, dst ip, ip proto, src port, dst port} —
//    what queries and policy decisions are keyed on;
//  * OpenFlow's 10-tuple {ingress port, MAC src/dst, ethertype, VLAN id,
//    IP src/dst, IP proto, transport src/dst ports} — what switch flow
//    tables match on.  The 10-tuple is a strict superset of the 5-tuple.

#include <cstdint>
#include <functional>
#include <string>

#include "net/ipv4.hpp"

namespace identxx::net {

enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

[[nodiscard]] std::string to_string(IpProto proto);

/// ident++ flow identity (§2).
struct FiveTuple {
  Ipv4Address src_ip;
  Ipv4Address dst_ip;
  IpProto proto = IpProto::kTcp;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;

  [[nodiscard]] bool operator==(const FiveTuple&) const noexcept = default;

  /// The same flow seen from the other end (src/dst swapped).
  [[nodiscard]] FiveTuple reversed() const noexcept {
    return FiveTuple{dst_ip, src_ip, proto, dst_port, src_port};
  }

  [[nodiscard]] std::string to_string() const;
};

/// OpenFlow flow identity (§3.1).
struct TenTuple {
  std::uint16_t in_port = 0;
  MacAddress src_mac;
  MacAddress dst_mac;
  std::uint16_t ether_type = 0x0800;  // IPv4
  std::uint16_t vlan_id = 0;          // 0 = untagged
  Ipv4Address src_ip;
  Ipv4Address dst_ip;
  IpProto proto = IpProto::kTcp;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;

  [[nodiscard]] bool operator==(const TenTuple&) const noexcept = default;

  /// Project down to the ident++ 5-tuple.
  [[nodiscard]] FiveTuple five_tuple() const noexcept {
    return FiveTuple{src_ip, dst_ip, proto, src_port, dst_port};
  }

  [[nodiscard]] std::string to_string() const;
};

/// FNV-1a style combiner used by the hash specializations below.
[[nodiscard]] constexpr std::size_t hash_combine(std::size_t seed,
                                                 std::size_t value) noexcept {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace identxx::net

template <>
struct std::hash<identxx::net::FiveTuple> {
  std::size_t operator()(const identxx::net::FiveTuple& t) const noexcept {
    using identxx::net::hash_combine;
    std::size_t h = std::hash<std::uint32_t>{}(t.src_ip.value());
    h = hash_combine(h, t.dst_ip.value());
    h = hash_combine(h, static_cast<std::size_t>(t.proto));
    h = hash_combine(h, (static_cast<std::size_t>(t.src_port) << 16) | t.dst_port);
    return h;
  }
};

template <>
struct std::hash<identxx::net::TenTuple> {
  std::size_t operator()(const identxx::net::TenTuple& t) const noexcept {
    using identxx::net::hash_combine;
    std::size_t h = std::hash<identxx::net::FiveTuple>{}(t.five_tuple());
    h = hash_combine(h, t.in_port);
    h = hash_combine(h, t.src_mac.value());
    h = hash_combine(h, t.dst_mac.value());
    h = hash_combine(h, (static_cast<std::size_t>(t.ether_type) << 16) | t.vlan_id);
    return h;
  }
};
