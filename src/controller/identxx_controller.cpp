#include "controller/identxx_controller.hpp"

#include <algorithm>

#include "identxx/keys.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace identxx::ctrl {

namespace {

/// Pseudo-MAC stamped on controller-originated query packets.
const net::MacAddress kControllerMac{0x02c0ffee0000ULL};

/// Key hints included in every query (§3.2: hints only; daemons may return
/// more).
const std::vector<std::string> kDefaultQueryKeys = {
    proto::keys::kUserId,      proto::keys::kGroupId,
    proto::keys::kName,        proto::keys::kVersion,
    proto::keys::kExeHash,     proto::keys::kRequirements,
    proto::keys::kReqSig,      proto::keys::kRuleMaker,
    proto::keys::kOsPatch,
};

[[nodiscard]] std::string dict_summary(const proto::ResponseDict& dict,
                                       const char* key) {
  const auto value = dict.latest(key);
  return value ? std::string(*value) : std::string();
}

}  // namespace

IdentxxController::IdentxxController(openflow::Topology* topology,
                                     pf::Ruleset ruleset,
                                     ControllerConfig config)
    : IdentxxController(topology, std::move(ruleset),
                        pf::FunctionRegistry::with_builtins(),
                        std::move(config)) {}

IdentxxController::IdentxxController(openflow::Topology* topology,
                                     pf::Ruleset ruleset,
                                     pf::FunctionRegistry registry,
                                     ControllerConfig config)
    : topology_(topology),
      engine_(std::make_unique<pf::PolicyEngine>(std::move(ruleset),
                                                 std::move(registry))),
      config_(std::move(config)) {}

void IdentxxController::adopt_switch(sim::NodeId switch_id,
                                     sim::SimTime control_latency) {
  openflow::Switch& sw = topology_->switch_at(switch_id);
  sw.set_controller(this, control_latency);
  domain_.insert(switch_id);
  install_intercept_rules(sw);
}

void IdentxxController::install_intercept_rules(openflow::Switch& sw) {
  using openflow::Wildcard;
  // Punt ident++ traffic (TCP 783, either direction) so this controller can
  // consume responses to its own queries and intercept transiting ones.
  openflow::FlowEntry to_daemon;
  to_daemon.match.wildcards =
      openflow::without(Wildcard::kAll, Wildcard::kProto | Wildcard::kDstPort);
  to_daemon.match.proto = net::IpProto::kTcp;
  to_daemon.match.dst_port = proto::kIdentPort;
  to_daemon.priority = ControllerConfig::kInterceptPriority;
  to_daemon.action = openflow::ToControllerAction{};
  sw.install_flow(to_daemon);

  openflow::FlowEntry from_daemon;
  from_daemon.match.wildcards =
      openflow::without(Wildcard::kAll, Wildcard::kProto | Wildcard::kSrcPort);
  from_daemon.match.proto = net::IpProto::kTcp;
  from_daemon.match.src_port = proto::kIdentPort;
  from_daemon.priority = ControllerConfig::kInterceptPriority;
  from_daemon.action = openflow::ToControllerAction{};
  sw.install_flow(from_daemon);
}

void IdentxxController::register_host(net::Ipv4Address ip, sim::NodeId node,
                                      net::MacAddress mac) {
  hosts_[ip] = HostInfo{node, mac};
}

void IdentxxController::set_proxy_response(net::Ipv4Address ip,
                                           proto::Section section) {
  proxy_responses_[ip] = std::move(section);
}

void IdentxxController::set_policy(pf::Ruleset ruleset) {
  engine_ = std::make_unique<pf::PolicyEngine>(std::move(ruleset),
                                               pf::FunctionRegistry::with_builtins());
}

std::size_t IdentxxController::revoke_all() {
  std::size_t removed = 0;
  for (const sim::NodeId id : domain_) {
    removed += topology_->switch_at(id).table().remove_if(
        [this](const openflow::FlowEntry& entry) {
          return entry.priority == config_.flow_priority && entry.cookie != 0;
        });
  }
  return removed;
}

std::size_t IdentxxController::revoke_if(
    const std::function<bool(const net::FiveTuple&)>& pred) {
  std::size_t removed = 0;
  for (const sim::NodeId id : domain_) {
    removed += topology_->switch_at(id).table().remove_if(
        [this, &pred](const openflow::FlowEntry& entry) {
          if (entry.priority != config_.flow_priority || entry.cookie == 0) {
            return false;
          }
          net::TenTuple tuple;
          tuple.src_ip = entry.match.src_ip;
          tuple.dst_ip = entry.match.dst_ip;
          tuple.proto = entry.match.proto;
          tuple.src_port = entry.match.src_port;
          tuple.dst_port = entry.match.dst_port;
          return pred(tuple.five_tuple());
        });
  }
  return removed;
}

void IdentxxController::on_flow_removed(const openflow::FlowRemovedMsg& msg) {
  if (msg.entry.cookie != 0) ++stats_.flows_expired;
}

void IdentxxController::on_packet_in(const openflow::PacketIn& msg) {
  ++stats_.packet_ins;
  const net::FiveTuple flow = msg.packet.five_tuple();

  if (compromised_) {
    // §5.1: an attacker with the controller disables all protection —
    // everything is allowed and cached as pass entries.
    openflow::FlowEntry entry;
    entry.match = openflow::FlowMatch::exact(msg.packet.ten_tuple(msg.in_port));
    entry.priority = config_.flow_priority;
    entry.action = openflow::FloodAction{};
    entry.cookie = next_cookie_++;
    topology_->switch_at(msg.switch_id).install_flow(entry);
    topology_->switch_at(msg.switch_id)
        .packet_out(msg.packet, openflow::FloodAction{}, msg.in_port);
    return;
  }

  if (proto::is_ident_traffic(flow)) {
    handle_ident_packet(msg, flow);
    return;
  }
  handle_new_flow(msg, flow);
}

void IdentxxController::handle_new_flow(const openflow::PacketIn& msg,
                                        const net::FiveTuple& flow) {
  // Controller-level decision cache (config ablation): serve repeat
  // packet-ins without another daemon round trip.
  if (config_.decision_cache_ttl > 0) {
    const auto cached = decision_cache_.find(flow);
    if (cached != decision_cache_.end()) {
      if (simulator().now() >= cached->second.expires) {
        decision_cache_.erase(cached);
      } else {
        ++stats_.decision_cache_hits;
        PendingFlow replay;
        replay.flow = flow;
        replay.buffered.push_back(msg);
        if (cached->second.allowed) {
          install_allow_path(replay);
          if (cached->second.keep_state) {
            PendingFlow reverse;
            reverse.flow = flow.reversed();
            install_allow_path(reverse);
          }
          release_buffered(replay, true);
        } else {
          if (config_.install_drop_entries) install_drop(replay);
        }
        return;
      }
    }
  }

  const auto [it, inserted] = pending_.try_emplace(flow);
  PendingFlow& pending = it->second;
  pending.buffered.push_back(msg);
  if (!inserted) {
    return;  // decision already in flight; packet waits
  }
  ++stats_.flows_seen;
  pending.flow = flow;
  pending.first_seen = simulator().now();
  pending.generation = ++generation_counter_;

  // Figure 1 step 3: query both ends of the flow.
  pending.awaiting_src = send_query(flow, flow.src_ip, flow.dst_ip);
  if (config_.query_both_ends) {
    pending.awaiting_dst = send_query(flow, flow.dst_ip, flow.src_ip);
  }

  // Hosts we cannot query may have proxy answers configured (§4
  // incremental benefit).
  if (!pending.awaiting_src) {
    if (const auto proxy = proxy_responses_.find(flow.src_ip);
        proxy != proxy_responses_.end()) {
      proto::Response response;
      response.proto = flow.proto;
      response.src_port = flow.src_port;
      response.dst_port = flow.dst_port;
      response.append_section(proxy->second);
      pending.src_response = std::move(response);
      ++stats_.queries_proxied;
    }
  }
  if (!pending.awaiting_dst && config_.query_both_ends) {
    if (const auto proxy = proxy_responses_.find(flow.dst_ip);
        proxy != proxy_responses_.end()) {
      proto::Response response;
      response.proto = flow.proto;
      response.src_port = flow.src_port;
      response.dst_port = flow.dst_port;
      response.append_section(proxy->second);
      pending.dst_response = std::move(response);
      ++stats_.queries_proxied;
    }
  }

  if (!pending.awaiting_src && !pending.awaiting_dst) {
    decide(pending, false);
    return;
  }

  // Arm the decision deadline.
  const std::uint64_t generation = pending.generation;
  const net::FiveTuple key = flow;
  simulator().schedule_after(config_.query_timeout, [this, key, generation]() {
    const auto pending_it = pending_.find(key);
    if (pending_it == pending_.end() ||
        pending_it->second.generation != generation) {
      return;  // already decided
    }
    ++stats_.query_timeouts;
    decide(pending_it->second, true);
  });
}

bool IdentxxController::send_query(const net::FiveTuple& flow,
                                   net::Ipv4Address target_ip,
                                   net::Ipv4Address spoof_src_ip) {
  const auto host_it = hosts_.find(target_ip);
  if (host_it == hosts_.end()) return false;
  const auto attachment = topology_->attachment(host_it->second.node);
  if (!attachment) return false;

  proto::Query query;
  query.proto = flow.proto;
  query.src_port = flow.src_port;
  query.dst_port = flow.dst_port;
  query.keys = kDefaultQueryKeys;

  // §3.2: the query's source IP is the flow's other endpoint.
  net::Packet packet = net::make_tcp_packet(
      kControllerMac, host_it->second.mac, spoof_src_ip, target_ip,
      next_query_port_++, proto::kIdentPort, query.serialize(),
      net::TcpFlags::kPsh | net::TcpFlags::kAck);
  if (next_query_port_ < 20000) next_query_port_ = 20000;  // wrap

  // Inject directly out of the host-facing port.
  topology_->switch_at(attachment->switch_id)
      .packet_out(packet, openflow::OutputAction{{attachment->out_port}}, 0);
  ++stats_.queries_sent;
  return true;
}

void IdentxxController::handle_ident_packet(const openflow::PacketIn& msg,
                                            const net::FiveTuple& flow) {
  if (flow.dst_port == proto::kIdentPort) {
    handle_transit_query(msg);
    return;
  }
  proto::Response response;
  try {
    response = proto::Response::parse(msg.packet.payload_text());
  } catch (const ParseError& e) {
    IDXX_LOG(kWarn, "controller") << config_.name
                                  << ": malformed ident++ response dropped: "
                                  << e.what();
    return;
  }
  handle_ident_response(msg, response);
}

void IdentxxController::handle_transit_query(const openflow::PacketIn& msg) {
  // A query crossing our switches (some other firewall is asking one of the
  // hosts behind us).  Either answer on the host's behalf or pass it along;
  // intercepted queries never cause new queries (§3.4).
  proto::Query query;
  try {
    query = proto::Query::parse(msg.packet.payload_text());
  } catch (const ParseError&) {
    return;  // not a well-formed query; drop
  }
  const net::Ipv4Address target_ip = msg.packet.ip.dst;
  if (query_interceptor_) {
    if (auto response = query_interceptor_(query, target_ip)) {
      // Spoof the end-host's address and answer ourselves.
      net::Packet reply = net::make_tcp_packet(
          kControllerMac, msg.packet.eth.src, target_ip, msg.packet.ip.src,
          proto::kIdentPort, msg.packet.src_port(), response->serialize(),
          net::TcpFlags::kPsh | net::TcpFlags::kAck);
      ++stats_.queries_proxied;
      openflow::PacketIn synthetic{msg.switch_id, std::move(reply), msg.in_port};
      forward_one_hop(synthetic, msg.packet.ip.src);
      return;
    }
  }
  forward_one_hop(msg, target_ip);
}

void IdentxxController::handle_ident_response(const openflow::PacketIn& msg,
                                              const proto::Response& response) {
  ++stats_.responses_received;
  const net::Ipv4Address responder = msg.packet.ip.src;
  const net::Ipv4Address peer = msg.packet.ip.dst;

  // Responder was the flow source?
  const net::FiveTuple as_src{responder, peer, response.proto,
                              response.src_port, response.dst_port};
  if (const auto it = pending_.find(as_src); it != pending_.end()) {
    it->second.src_response = response;
    maybe_decide(it->second);
    return;
  }
  // Responder was the flow destination?
  const net::FiveTuple as_dst{peer, responder, response.proto,
                              response.src_port, response.dst_port};
  if (const auto it = pending_.find(as_dst); it != pending_.end()) {
    it->second.dst_response = response;
    maybe_decide(it->second);
    return;
  }

  // Not ours: a response transiting our domain on its way to another
  // firewall.  Optionally augment it (network collaboration, §4), then
  // forward it one hop toward its destination.
  openflow::PacketIn forwarded = msg;
  if (augmenter_) {
    const std::string key =
        as_src.to_string() + "|" + responder.to_string();
    const sim::SimTime now = simulator().now();
    const auto it = augmented_.find(key);
    const bool recently_augmented =
        it != augmented_.end() && now - it->second < kAugmentWindow;
    if (!recently_augmented) {
      if (auto section = augmenter_(response, as_src)) {
        proto::Response augmented = response;
        augmented.append_section(std::move(*section));
        forwarded.packet.set_payload_text(augmented.serialize());
        augmented_[key] = now;
        ++stats_.responses_augmented;
        // Bound the cache: drop entries outside the window occasionally.
        if (augmented_.size() > 8192) {
          std::erase_if(augmented_, [now](const auto& entry) {
            return now - entry.second >= kAugmentWindow;
          });
        }
      }
    }
  }
  ++stats_.ident_transit_forwarded;
  forward_one_hop(forwarded, peer);
}

void IdentxxController::forward_one_hop(const openflow::PacketIn& msg,
                                        net::Ipv4Address toward_ip) {
  const auto host_it = hosts_.find(toward_ip);
  if (host_it == hosts_.end()) return;
  const auto hops = topology_->path(msg.switch_id, host_it->second.node);
  if (!hops || hops->empty()) return;
  const openflow::Hop& first = hops->front();
  if (first.switch_id != msg.switch_id) return;
  topology_->switch_at(msg.switch_id)
      .packet_out(msg.packet, openflow::OutputAction{{first.out_port}},
                  msg.in_port);
}

void IdentxxController::maybe_decide(PendingFlow& pending) {
  const bool src_ready = !pending.awaiting_src || pending.src_response;
  const bool dst_ready = !pending.awaiting_dst || pending.dst_response;
  if (src_ready && dst_ready) decide(pending, false);
}

void IdentxxController::decide(PendingFlow& pending, bool timed_out) {
  // Late proxy fill-in for sides that never answered.
  const auto fill_proxy = [this, &pending](std::optional<proto::Response>& slot,
                                           net::Ipv4Address ip) {
    if (slot) return;
    const auto proxy = proxy_responses_.find(ip);
    if (proxy == proxy_responses_.end()) return;
    proto::Response response;
    response.proto = pending.flow.proto;
    response.src_port = pending.flow.src_port;
    response.dst_port = pending.flow.dst_port;
    response.append_section(proxy->second);
    slot = std::move(response);
    ++stats_.queries_proxied;
  };
  fill_proxy(pending.src_response, pending.flow.src_ip);
  fill_proxy(pending.dst_response, pending.flow.dst_ip);

  pf::FlowContext ctx;
  ctx.flow = pending.flow;
  if (pending.src_response) ctx.src = proto::ResponseDict(*pending.src_response);
  if (pending.dst_response) ctx.dst = proto::ResponseDict(*pending.dst_response);
  if (!pending.buffered.empty()) {
    ctx.openflow = pending.buffered.front().packet.ten_tuple(
        pending.buffered.front().in_port);
  }

  pf::Verdict verdict;
  try {
    verdict = engine_->evaluate(ctx);
  } catch (const PolicyError& e) {
    // Administrator configuration error: fail closed.
    IDXX_LOG(kError, "controller") << config_.name << ": policy error, "
                                   << "blocking flow: " << e.what();
    verdict.action = pf::RuleAction::kBlock;
  }

  DecisionRecord record;
  record.time = simulator().now();
  record.flow = pending.flow;
  record.allowed = verdict.allowed();
  record.timed_out = timed_out;
  record.logged = verdict.log;
  if (verdict.log) {
    ++stats_.flows_logged;
    IDXX_LOG(kInfo, "controller")
        << config_.name << ": log rule matched: " << pending.flow.to_string()
        << " -> " << (verdict.allowed() ? "pass" : "block");
  }
  record.rule = verdict.rule ? pf::to_string(*verdict.rule) : "default";
  record.src_user = dict_summary(ctx.src, proto::keys::kUserId);
  record.src_app = dict_summary(ctx.src, proto::keys::kName);
  record.dst_user = dict_summary(ctx.dst, proto::keys::kUserId);
  record.setup_latency = simulator().now() - pending.first_seen;
  audit_log_.push_back(record);

  if (config_.decision_cache_ttl > 0) {
    decision_cache_[pending.flow] =
        CachedDecision{verdict.allowed(), verdict.keep_state,
                       simulator().now() + config_.decision_cache_ttl};
  }

  if (verdict.allowed()) {
    ++stats_.flows_allowed;
    install_allow_path(pending);
    if (verdict.keep_state) {
      // keep state also admits the reverse direction of the flow.
      PendingFlow reverse;
      reverse.flow = pending.flow.reversed();
      install_allow_path(reverse);
    }
    release_buffered(pending, true);
  } else {
    ++stats_.flows_blocked;
    if (config_.install_drop_entries) install_drop(pending);
    release_buffered(pending, false);
  }
  // Copy the key before erasing: `pending` aliases into the map node.
  const net::FiveTuple key = pending.flow;
  pending_.erase(key);
}

void IdentxxController::install_allow_path(const PendingFlow& pending) {
  const auto src_it = hosts_.find(pending.flow.src_ip);
  const auto dst_it = hosts_.find(pending.flow.dst_ip);
  if (src_it == hosts_.end() || dst_it == hosts_.end()) return;
  const auto hops =
      topology_->path(src_it->second.node, dst_it->second.node);
  if (!hops) return;

  // Template 10-tuple: MACs from the buffered packet when available so the
  // installed entries exactly match the flow's packets.
  net::TenTuple tuple;
  if (!pending.buffered.empty()) {
    tuple = pending.buffered.front().packet.ten_tuple(0);
  } else {
    tuple.src_ip = pending.flow.src_ip;
    tuple.dst_ip = pending.flow.dst_ip;
    tuple.proto = pending.flow.proto;
    tuple.src_port = pending.flow.src_port;
    tuple.dst_port = pending.flow.dst_port;
    tuple.src_mac = src_it->second.mac;
    tuple.dst_mac = net::MacAddress{0xffffffffffffULL};
  }
  tuple.src_ip = pending.flow.src_ip;
  tuple.dst_ip = pending.flow.dst_ip;
  tuple.proto = pending.flow.proto;
  tuple.src_port = pending.flow.src_port;
  tuple.dst_port = pending.flow.dst_port;

  const std::uint64_t cookie = next_cookie_++;
  installed_flows_[cookie] = pending.flow;
  bool first_domain_hop = true;
  for (const openflow::Hop& hop : *hops) {
    if (!domain_.contains(hop.switch_id)) continue;
    if (!config_.install_full_path && !first_domain_hop) break;
    tuple.in_port = hop.in_port;
    openflow::FlowEntry entry;
    entry.match = openflow::FlowMatch::exact(tuple);
    if (hop.in_port == 0) {
      entry.match.wildcards = openflow::Wildcard::kInPort;
    }
    entry.priority = config_.flow_priority;
    entry.action = openflow::OutputAction{{hop.out_port}};
    entry.idle_timeout = config_.flow_idle_timeout;
    entry.hard_timeout = config_.flow_hard_timeout;
    entry.cookie = cookie;
    topology_->switch_at(hop.switch_id).install_flow(std::move(entry));
    ++stats_.entries_installed;
    first_domain_hop = false;
  }
}

void IdentxxController::install_drop(const PendingFlow& pending) {
  if (pending.buffered.empty()) return;
  const openflow::PacketIn& msg = pending.buffered.front();
  if (!domain_.contains(msg.switch_id)) return;
  openflow::FlowEntry entry;
  entry.match =
      openflow::FlowMatch::exact(msg.packet.ten_tuple(msg.in_port));
  entry.priority = config_.flow_priority;
  entry.action = openflow::DropAction{};
  entry.idle_timeout = config_.flow_idle_timeout;
  entry.hard_timeout = config_.flow_hard_timeout;
  entry.cookie = next_cookie_++;
  installed_flows_[entry.cookie] = pending.flow;
  topology_->switch_at(msg.switch_id).install_flow(std::move(entry));
  ++stats_.entries_installed;
}

std::vector<IdentxxController::FlowUsage> IdentxxController::flow_usage() const {
  std::unordered_map<std::uint64_t, FlowUsage> by_cookie;
  for (const sim::NodeId id : domain_) {
    for (const openflow::FlowEntry& entry :
         topology_->switch_at(id).table().entries()) {
      const auto it = installed_flows_.find(entry.cookie);
      if (it == installed_flows_.end()) continue;
      FlowUsage& usage = by_cookie[entry.cookie];
      usage.flow = it->second;
      usage.packets = std::max(usage.packets, entry.packet_count);
      usage.bytes = std::max(usage.bytes, entry.byte_count);
    }
  }
  std::vector<FlowUsage> out;
  out.reserve(by_cookie.size());
  for (auto& [cookie, usage] : by_cookie) out.push_back(usage);
  return out;
}

void IdentxxController::release_buffered(PendingFlow& pending, bool allowed) {
  if (!allowed) {
    pending.buffered.clear();
    return;
  }
  const auto src_it = hosts_.find(pending.flow.src_ip);
  const auto dst_it = hosts_.find(pending.flow.dst_ip);
  std::optional<std::vector<openflow::Hop>> hops;
  if (src_it != hosts_.end() && dst_it != hosts_.end()) {
    hops = topology_->path(src_it->second.node, dst_it->second.node);
  }
  for (const openflow::PacketIn& msg : pending.buffered) {
    bool sent = false;
    if (hops) {
      for (const openflow::Hop& hop : *hops) {
        if (hop.switch_id == msg.switch_id) {
          topology_->switch_at(msg.switch_id)
              .packet_out(msg.packet,
                          openflow::OutputAction{{hop.out_port}}, msg.in_port);
          sent = true;
          break;
        }
      }
    }
    if (!sent) {
      // Off-path or unknown: fall back to flooding from that switch.
      topology_->switch_at(msg.switch_id)
          .packet_out(msg.packet, openflow::FloodAction{}, msg.in_port);
    }
    ++stats_.buffered_packets_released;
  }
  pending.buffered.clear();
}

}  // namespace identxx::ctrl
