#include "controller/identxx_controller.hpp"

#include "identxx/keys.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace identxx::ctrl {

namespace {

/// Pseudo-MAC stamped on controller-originated query packets.
const net::MacAddress kControllerMac{0x02c0ffee0000ULL};

/// Key hints included in every query (§3.2: hints only; daemons may return
/// more).
const std::vector<std::string> kDefaultQueryKeys = {
    proto::keys::kUserId,      proto::keys::kGroupId,
    proto::keys::kName,        proto::keys::kVersion,
    proto::keys::kExeHash,     proto::keys::kRequirements,
    proto::keys::kReqSig,      proto::keys::kRuleMaker,
    proto::keys::kOsPatch,
};

}  // namespace

IdentxxController::IdentxxController(openflow::Topology* topology,
                                     pf::Ruleset ruleset,
                                     ControllerConfig config)
    : IdentxxController(topology, std::move(ruleset),
                        pf::FunctionRegistry::with_builtins(),
                        std::move(config)) {}

IdentxxController::IdentxxController(openflow::Topology* topology,
                                     pf::Ruleset ruleset,
                                     pf::FunctionRegistry registry,
                                     ControllerConfig config)
    : AdmissionController(
          topology,
          AdmissionPipeline::identxx(std::move(ruleset), std::move(registry)),
          std::move(config)) {}

void IdentxxController::set_policy(pf::Ruleset ruleset) {
  replace_engine(std::make_unique<PolicyDecisionEngine>(std::move(ruleset)));
}

const pf::PolicyEngine& IdentxxController::engine() const {
  // The identxx pipeline carries a PolicyDecisionEngine unless a caller
  // swapped in something else via replace_engine.
  const auto* policy =
      dynamic_cast<const PolicyDecisionEngine*>(&decision_engine());
  if (policy == nullptr) {
    throw Error("IdentxxController::engine(): decision engine is not a "
                "PolicyDecisionEngine (replaced via replace_engine?)");
  }
  return policy->policy_engine();
}

void IdentxxController::on_switch_adopted(openflow::Switch& sw) {
  install_intercept_rules(sw);
}

void IdentxxController::install_intercept_rules(openflow::Switch& sw) {
  using openflow::Wildcard;
  // Punt ident++ traffic (TCP 783, either direction) so this controller can
  // consume responses to its own queries and intercept transiting ones.
  openflow::FlowEntry to_daemon;
  to_daemon.match.wildcards =
      openflow::without(Wildcard::kAll, Wildcard::kProto | Wildcard::kDstPort);
  to_daemon.match.proto = net::IpProto::kTcp;
  to_daemon.match.dst_port = proto::kIdentPort;
  to_daemon.priority = ControllerConfig::kInterceptPriority;
  to_daemon.action = openflow::ToControllerAction{};
  sw.install_flow(to_daemon);

  openflow::FlowEntry from_daemon;
  from_daemon.match.wildcards =
      openflow::without(Wildcard::kAll, Wildcard::kProto | Wildcard::kSrcPort);
  from_daemon.match.proto = net::IpProto::kTcp;
  from_daemon.match.src_port = proto::kIdentPort;
  from_daemon.priority = ControllerConfig::kInterceptPriority;
  from_daemon.action = openflow::ToControllerAction{};
  sw.install_flow(from_daemon);
}

bool IdentxxController::handle_special_packet(const openflow::PacketIn& msg,
                                              const net::FiveTuple& flow) {
  if (!proto::is_ident_traffic(flow)) return false;
  handle_ident_packet(msg, flow);
  return true;
}

bool IdentxxController::send_query(const net::FiveTuple& flow,
                                   const QueryTarget& target) {
  const HostInfo* host = find_host(target.target);
  if (host == nullptr) return false;
  const auto attachment = topology().attachment(host->node);
  if (!attachment) return false;

  proto::Query query;
  query.proto = flow.proto;
  query.src_port = flow.src_port;
  query.dst_port = flow.dst_port;
  query.keys = kDefaultQueryKeys;

  // §3.2: the query's source IP is the flow's other endpoint.  The
  // ephemeral source port comes from the per-controller seeded stream when
  // one is configured (seed_query_ports), else the sequential counter.
  std::uint16_t query_port;
  if (query_port_rng_) {
    query_port =
        static_cast<std::uint16_t>(20000 + query_port_rng_->next_below(40000));
  } else {
    query_port = next_query_port_++;
    if (next_query_port_ < 20000) next_query_port_ = 20000;  // wrap
  }
  net::Packet packet = net::make_tcp_packet(
      kControllerMac, host->mac, target.spoof_src, target.target,
      query_port, proto::kIdentPort, query.serialize(),
      net::TcpFlags::kPsh | net::TcpFlags::kAck);

  // Inject directly out of the host-facing port.
  topology()
      .switch_at(attachment->switch_id)
      .packet_out(packet, openflow::OutputAction{{attachment->out_port}}, 0);
  return true;
}

void IdentxxController::handle_ident_packet(const openflow::PacketIn& msg,
                                            const net::FiveTuple& flow) {
  if (flow.dst_port == proto::kIdentPort) {
    handle_transit_query(msg);
    return;
  }
  proto::Response response;
  try {
    response = proto::Response::parse(msg.packet.payload_text());
  } catch (const ParseError& e) {
    IDXX_LOG(kWarn, "controller") << config().name
                                  << ": malformed ident++ response dropped: "
                                  << e.what();
    return;
  }
  handle_ident_response(msg, response);
}

void IdentxxController::handle_transit_query(const openflow::PacketIn& msg) {
  // A query crossing our switches (some other firewall is asking one of the
  // hosts behind us).  Either answer on the host's behalf or pass it along;
  // intercepted queries never cause new queries (§3.4).
  proto::Query query;
  try {
    query = proto::Query::parse(msg.packet.payload_text());
  } catch (const ParseError&) {
    return;  // not a well-formed query; drop
  }
  const net::Ipv4Address target_ip = msg.packet.ip.dst;
  if (query_interceptor_) {
    if (auto response = query_interceptor_(query, target_ip)) {
      // Spoof the end-host's address and answer ourselves.
      net::Packet reply = net::make_tcp_packet(
          kControllerMac, msg.packet.eth.src, target_ip, msg.packet.ip.src,
          proto::kIdentPort, msg.packet.src_port(), response->serialize(),
          net::TcpFlags::kPsh | net::TcpFlags::kAck);
      notify([&](AdmissionObserver& o) {
        o.on_query_proxied(msg.packet.five_tuple());
      });
      openflow::PacketIn synthetic{msg.switch_id, std::move(reply), msg.in_port};
      forward_one_hop(synthetic, msg.packet.ip.src);
      return;
    }
  }
  forward_one_hop(msg, target_ip);
}

void IdentxxController::handle_ident_response(const openflow::PacketIn& msg,
                                              const proto::Response& response) {
  if (try_consume_response(msg, response)) return;
  handle_transit_response(msg, response);
}

bool IdentxxController::try_consume_response(const openflow::PacketIn& msg,
                                             const proto::Response& response) {
  const net::Ipv4Address responder = msg.packet.ip.src;
  const net::Ipv4Address peer = msg.packet.ip.dst;
  bool duplicate = false;
  AdmissionContext* ctx =
      collector().accept_response(responder, peer, response, &duplicate);
  // The memo key covers the response body AND the carrying packet's ports:
  // a channel-duplicated punt is byte-identical (same controller query
  // port), while a fresh response about the same flow — e.g. an end host
  // querying its peer directly (§4) — arrives on a different ephemeral
  // port and must still transit.
  const net::FiveTuple as_src{responder, peer, response.proto,
                              response.src_port, response.dst_port};
  const net::FiveTuple pkt = msg.packet.five_tuple();
  const std::string key = as_src.to_string() + "|" +
                          std::to_string(pkt.src_port) + ":" +
                          std::to_string(pkt.dst_port);
  const sim::SimTime now = simulator().now();
  if (ctx == nullptr) {
    // No pending flow — but if this exact packet was consumed moments
    // ago, it is a duplicated delivery, not a transiting response:
    // swallow it so it never forwards on toward a host that did not ask
    // (DESIGN.md §14).  The window mirrors augmented_'s reasoning on
    // 5-tuple reuse.
    const auto it = recent_responses_.find(key);
    if (it != recent_responses_.end() && now - it->second < kAugmentWindow) {
      notify([&](AdmissionObserver& o) { o.on_duplicate_response(responder); });
      return true;
    }
    return false;
  }
  if (duplicate) {
    // The matching slot is already filled: first answer won, count and
    // drop this copy.
    notify([&](AdmissionObserver& o) { o.on_duplicate_response(responder); });
    return true;
  }
  recent_responses_[key] = now;
  if (recent_responses_.size() > 8192) {
    std::erase_if(recent_responses_, [now](const auto& entry) {
      return now - entry.second >= kAugmentWindow;
    });
  }
  notify([&](AdmissionObserver& o) { o.on_response_received(responder); });
  maybe_decide(*ctx);
  return true;
}

void IdentxxController::handle_transit_response(const openflow::PacketIn& msg,
                                                const proto::Response& response) {
  const net::Ipv4Address responder = msg.packet.ip.src;
  const net::Ipv4Address peer = msg.packet.ip.dst;
  notify([&](AdmissionObserver& o) { o.on_response_received(responder); });

  // A response transiting our domain on its way to another firewall.
  // Optionally augment it (network collaboration, §4), then forward it
  // one hop toward its destination.
  const net::FiveTuple as_src{responder, peer, response.proto,
                              response.src_port, response.dst_port};
  openflow::PacketIn forwarded = msg;
  if (augmenter_) {
    const std::string key = as_src.to_string() + "|" + responder.to_string();
    const sim::SimTime now = simulator().now();
    const auto it = augmented_.find(key);
    const bool recently_augmented =
        it != augmented_.end() && now - it->second < kAugmentWindow;
    if (!recently_augmented) {
      if (auto section = augmenter_(response, as_src)) {
        proto::Response augmented = response;
        augmented.append_section(std::move(*section));
        forwarded.packet.set_payload_text(augmented.serialize());
        augmented_[key] = now;
        notify([&](AdmissionObserver& o) { o.on_response_augmented(as_src); });
        // Bound the cache: drop entries outside the window occasionally.
        if (augmented_.size() > 8192) {
          std::erase_if(augmented_, [now](const auto& entry) {
            return now - entry.second >= kAugmentWindow;
          });
        }
      }
    }
  }
  notify([&](AdmissionObserver& o) { o.on_transit_forwarded(as_src); });
  forward_one_hop(forwarded, peer);
}

void IdentxxController::forward_one_hop(const openflow::PacketIn& msg,
                                        net::Ipv4Address toward_ip) {
  const HostInfo* host = find_host(toward_ip);
  if (host == nullptr) return;
  const auto hops = topology().path(msg.switch_id, host->node);
  if (!hops || hops->empty()) return;
  const openflow::Hop& first = hops->front();
  if (first.switch_id != msg.switch_id) return;
  topology()
      .switch_at(msg.switch_id)
      .packet_out(msg.packet, openflow::OutputAction{{first.out_port}},
                  msg.in_port);
}

}  // namespace identxx::ctrl
