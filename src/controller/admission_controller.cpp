#include "controller/admission_controller.hpp"

#include <algorithm>

#include "controller/shard_map.hpp"
#include "identxx/keys.hpp"
#include "sim/schedule.hpp"
#include "util/rng.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace identxx::ctrl {

namespace {

[[nodiscard]] std::string dict_summary(const proto::ResponseDict& dict,
                                       const char* key) {
  const auto value = dict.latest(key);
  return value ? std::string(*value) : std::string();
}

/// Schedule-exploration footprints (DESIGN.md §13).  The domain id doubles
/// as both the cookie-namespace and control-epoch resource key: each
/// domain owns exactly one of each.
void note_epoch_access(std::uint16_t domain, bool write) noexcept {
  sim::note_access({sim::LaneAccess::Kind::kControlEpoch, domain, write});
}

void note_cookie_access(std::uint16_t domain) noexcept {
  sim::note_access(
      {sim::LaneAccess::Kind::kCookieNamespace, domain, /*write=*/true});
}

}  // namespace

AdmissionController::AdmissionController(openflow::Topology* topology,
                                         AdmissionPipeline pipeline,
                                         ControllerConfig config)
    : topology_(topology),
      pipeline_(std::move(pipeline)),
      config_(std::move(config)) {
  pipeline_.finish(config_);
  if (!pipeline_.engine) {
    throw Error("AdmissionController: pipeline needs a DecisionEngine");
  }
  apply_engine_config();
  auto stats = std::make_unique<StatsObserver>();
  stats_observer_ = stats.get();
  observers_.push_back(std::move(stats));
  auto audit = std::make_unique<AuditLogObserver>(config_.audit_log_capacity);
  audit_observer_ = audit.get();
  observers_.push_back(std::move(audit));
}

void AdmissionController::adopt_switch(sim::NodeId switch_id,
                                       sim::SimTime control_latency) {
  openflow::Switch& sw = topology_->switch_at(switch_id);
  sw.set_controller(this, control_latency);
  domain_.insert(switch_id);
  on_switch_adopted(sw);
}

void AdmissionController::join_domain(sim::NodeId switch_id) {
  (void)topology_->switch_at(switch_id);  // validate the id
  domain_.insert(switch_id);
}

void AdmissionController::register_host(net::Ipv4Address ip, sim::NodeId node,
                                        net::MacAddress mac) {
  hosts_[ip] = HostInfo{node, mac};
}

const HostInfo* AdmissionController::find_host(net::Ipv4Address ip) const {
  const auto it = hosts_.find(ip);
  return it == hosts_.end() ? nullptr : &it->second;
}

std::uint64_t AdmissionController::allocate_cookie(const net::FiveTuple& flow) {
  note_cookie_access(config_.cookie_namespace);
  const std::uint64_t cookie =
      (static_cast<std::uint64_t>(config_.cookie_namespace)
       << ShardMap::kCookieShardShift) |
      next_cookie_++;
  installed_flows_[cookie] = flow;
  return cookie;
}

bool AdmissionController::owns_cookie(std::uint64_t cookie) const noexcept {
  return cookie != 0 &&
         ShardMap::cookie_shard_tag(cookie) == config_.cookie_namespace;
}

void AdmissionController::add_observer(
    std::unique_ptr<AdmissionObserver> observer) {
  observers_.push_back(std::move(observer));
}

void AdmissionController::apply_engine_config() {
  // Engine-level knobs that live in the controller's config: the
  // batched-PF-evaluation ablation toggle and the verifier's key-table
  // memory budget.
  if (auto* policy = dynamic_cast<PolicyDecisionEngine*>(pipeline_.engine.get())) {
    policy->set_batch_eval(config_.batch_policy_eval);
    if (config_.key_table_budget_bytes > 0) {
      policy->set_key_table_budget(config_.key_table_budget_bytes);
    }
  }
}

void AdmissionController::replace_engine(
    std::unique_ptr<DecisionEngine> engine) {
  if (!engine) throw Error("replace_engine: null DecisionEngine");
  pipeline_.engine = std::move(engine);
  apply_engine_config();
  // Decisions in flight on a shard lane were computed by the replaced
  // engine; the epoch bump makes their commit re-decide.
  note_epoch_access(config_.cookie_namespace, /*write=*/true);
  ++control_epoch_;
  // Stale verdicts must not outlive the policy that produced them.
  if (pipeline_.cache) pipeline_.cache->clear();
  // Aggregated rule covers encode the OLD ruleset's scope.  Unlike
  // per-flow exact entries (which only keep admitting flows already
  // decided), a covering wildcard entry silently admits *new* flows under
  // the replaced policy — flush them.
  for (const sim::NodeId id : domain_) {
    topology_->switch_at(id).table().remove_if(
        [this](const openflow::FlowEntry& entry) {
          return owns_cookie(entry.cookie) &&
                 entry.priority == config_.flow_priority &&
                 AggregatingInstallStrategy::is_aggregate_entry(entry);
        });
  }
  prune_installed_flows();
}

std::size_t AdmissionController::revoke_all() {
  note_epoch_access(config_.cookie_namespace, /*write=*/true);
  ++control_epoch_;
  std::size_t removed = 0;
  for (const sim::NodeId id : domain_) {
    removed += topology_->switch_at(id).table().remove_if(
        [this](const openflow::FlowEntry& entry) {
          return entry.priority == config_.flow_priority &&
                 owns_cookie(entry.cookie);
        });
  }
  if (pipeline_.cache) pipeline_.cache->clear();
  prune_installed_flows();
  return removed;
}

std::size_t AdmissionController::revoke_if(
    const std::function<bool(const net::FiveTuple&)>& pred) {
  note_epoch_access(config_.cookie_namespace, /*write=*/true);
  ++control_epoch_;
  std::size_t removed = 0;
  for (const sim::NodeId id : domain_) {
    removed += topology_->switch_at(id).table().remove_if(
        [this, &pred](const openflow::FlowEntry& entry) {
          if (entry.priority != config_.flow_priority ||
              !owns_cookie(entry.cookie)) {
            return false;
          }
          // Judge by the flow registered at install time (cookie map):
          // reading the 5-tuple back out of the match is wrong for
          // covering wildcard entries, whose match fields are partly
          // unset.  An aggregate entry is revoked when its *seeding*
          // flow matches; flow-level quarantine of traffic still covered
          // by a rule belongs to higher-priority wildcard drops.
          const auto it = installed_flows_.find(entry.cookie);
          return it != installed_flows_.end() && pred(it->second);
        });
  }
  // The cache would otherwise silently re-admit a revoked flow until its
  // TTL passed — revocation invalidates matching cached decisions too.
  // Cached keep_state decisions install the reverse direction as well, so
  // an entry dies when the predicate matches either direction.
  if (pipeline_.cache) {
    pipeline_.cache->invalidate_if([&pred](const net::FiveTuple& flow) {
      return pred(flow) || pred(flow.reversed());
    });
  }
  prune_installed_flows();
  return removed;
}

bool AdmissionController::cookie_live(std::uint64_t cookie) const {
  for (const sim::NodeId id : domain_) {
    if (topology_->switch_at(id).table().has_cookie(cookie)) return true;
  }
  return false;
}

void AdmissionController::prune_installed_flows() {
  std::erase_if(installed_flows_, [this](const auto& entry) {
    return !cookie_live(entry.first);
  });
}

void AdmissionController::on_flow_removed(const openflow::FlowRemovedMsg& msg) {
  if (msg.entry.cookie != 0) {
    notify([&](AdmissionObserver& o) { o.on_flow_expired(msg.entry.cookie); });
    // Retire the cookie-map entry once the cookie's last entry anywhere in
    // the domain is gone (full-path installs share one cookie across
    // switches) — otherwise installed_flows_ grows for the whole run.
    if (!cookie_live(msg.entry.cookie)) {
      installed_flows_.erase(msg.entry.cookie);
    }
  }
}

void AdmissionController::on_packet_in(const openflow::PacketIn& msg) {
  notify([&](AdmissionObserver& o) { o.on_packet_in(msg); });
  const net::FiveTuple flow = msg.packet.five_tuple();

  if (compromised_) {
    // §5.1: an attacker with the controller disables all protection —
    // everything is allowed and cached as pass entries.
    openflow::FlowEntry entry;
    entry.match = openflow::FlowMatch::exact(msg.packet.ten_tuple(msg.in_port));
    entry.priority = config_.flow_priority;
    entry.action = openflow::FloodAction{};
    entry.cookie = allocate_cookie(flow);
    topology_->switch_at(msg.switch_id).install_flow(entry);
    topology_->switch_at(msg.switch_id)
        .packet_out(msg.packet, openflow::FloodAction{}, msg.in_port);
    return;
  }

  if (handle_special_packet(msg, flow)) return;
  handle_new_flow(msg, flow);
}

void AdmissionController::replay_cached(const openflow::PacketIn& msg,
                                        const net::FiveTuple& flow,
                                        const AdmissionDecision& cached) {
  notify([&](AdmissionObserver& o) { o.on_cache_hit(flow, cached); });
  AdmissionContext replay;
  replay.flow = flow;
  replay.buffered.push_back(msg);
  apply_decision(replay, cached);
}

void AdmissionController::apply_decision(AdmissionContext& ctx,
                                         const AdmissionDecision& decision) {
  if (decision.allowed) {
    const std::size_t installed =
        pipeline_.installer->install_allow(*this, ctx, decision);
    notify([&](AdmissionObserver& o) { o.on_entries_installed(installed); });
    if (decision.keep_state) {
      // keep state also admits the reverse direction of the flow.  The
      // covers (if any) describe the forward direction only — strip them
      // so the reverse install stays per-flow.
      AdmissionContext reverse;
      reverse.flow = ctx.flow.reversed();
      AdmissionDecision reverse_decision = decision;
      reverse_decision.covers.clear();
      const std::size_t rev =
          pipeline_.installer->install_allow(*this, reverse, reverse_decision);
      notify([&](AdmissionObserver& o) { o.on_entries_installed(rev); });
    }
    release_buffered(ctx, true);
  } else {
    const std::size_t installed =
        pipeline_.installer->install_drop(*this, ctx, decision);
    notify([&](AdmissionObserver& o) { o.on_entries_installed(installed); });
    release_buffered(ctx, false);
  }
}

void AdmissionController::handle_new_flow(const openflow::PacketIn& msg,
                                          const net::FiveTuple& flow) {
  // Decision cache (config ablation): serve repeat packet-ins without
  // another daemon round trip.
  if (pipeline_.cache) {
    if (const auto cached = pipeline_.cache->lookup(flow, simulator().now())) {
      replay_cached(msg, flow, *cached);
      return;
    }
  }

  const auto [ctx, inserted] =
      pipeline_.collector->begin(flow, msg, simulator().now());
  if (!inserted) {
    return;  // decision already in flight; packet waits
  }
  notify([&](AdmissionObserver& o) { o.on_flow_seen(flow); });

  // Stage 1: which daemons to ask (Figure 1 step 3).  The plan is kept on
  // the context so deadline retries can re-issue the unanswered sides.
  const QueryPlan plan = pipeline_.planner->plan(flow, *this);
  ctx->targets = plan.targets;
  for (const QueryTarget& target : plan.targets) {
    if (!send_query(flow, target)) continue;
    (target.is_source_side ? ctx->awaiting_src : ctx->awaiting_dst) = true;
    notify([&](AdmissionObserver& o) { o.on_query_sent(flow, target.target); });
  }

  // Stage 2: proxy answers for sides we could not query (§4).
  const std::size_t proxied = pipeline_.collector->fill_proxies_at_begin(
      *ctx, config_.query_both_ends);
  for (std::size_t i = 0; i < proxied; ++i) {
    notify([&](AdmissionObserver& o) { o.on_query_proxied(flow); });
  }

  if (ResponseCollector::ready(*ctx)) {
    decide_one(*ctx, false);
    return;
  }

  // Arm the decision deadline; expiry is swept in batches so simultaneous
  // packet-in storms share one decide_many() evaluation.  One sweep per
  // deadline tick: flows armed at the same instant share a callback.
  const sim::SimTime deadline = simulator().now() + config_.query_timeout;
  pipeline_.collector->arm_deadline(*ctx, deadline);
  if (deadline != last_scheduled_sweep_) {
    last_scheduled_sweep_ = deadline;
    simulator().schedule_after(config_.query_timeout,
                               [this]() { sweep_expired(); });
  }
}

void AdmissionController::sweep_expired() {
  std::vector<AdmissionContext*> expired =
      pipeline_.collector->expired(simulator().now());
  std::erase_if(expired, [](const AdmissionContext* ctx) {
    return ctx->decision_in_flight;
  });
  if (expired.empty()) return;  // everything already decided

  // Retry pass (DESIGN.md §14): before falling back to a partial-
  // information decision, re-issue the unanswered queries with backoff.
  // Retried contexts re-arm their deadline and leave this sweep.
  if (config_.max_query_retries > 0) {
    std::erase_if(expired,
                  [this](AdmissionContext* ctx) { return retry_queries(*ctx); });
    if (expired.empty()) return;
  }

  for (AdmissionContext* ctx : expired) {
    notify([&](AdmissionObserver& o) { o.on_query_timeout(ctx->flow); });
    const std::size_t proxied =
        pipeline_.collector->fill_proxies_at_decide(*ctx);
    for (std::size_t i = 0; i < proxied; ++i) {
      notify([&](AdmissionObserver& o) { o.on_query_proxied(ctx->flow); });
    }
    ctx->timed_out = true;
  }

  // Graceful degradation (DESIGN.md §14): a flow whose retry budget is
  // spent with a queried side still silent gets a fail-closed degraded
  // verdict — a short-TTL drop cover plus a re-admission probe — instead
  // of feeding partial information to the engine.  Degraded verdicts
  // bypass the shard-lane dispatch entirely (no engine state is read), so
  // they finalize here, before the engine batch, in both classic and
  // sharded modes.
  if (config_.degraded_cover_ttl > 0) {
    std::vector<AdmissionContext*> degraded;
    std::erase_if(expired, [&degraded](AdmissionContext* ctx) {
      if (ResponseCollector::ready(*ctx)) return false;
      degraded.push_back(ctx);
      return true;
    });
    for (AdmissionContext* ctx : degraded) {
      AdmissionDecision decision;
      decision.allowed = false;
      decision.degraded = true;
      decision.rule = "degraded (endpoint unresponsive)";
      finalize(*ctx, decision);
    }
    if (expired.empty()) return;
  }

  // Stage 3, batched: one decide_many over every flow that hit this
  // deadline tick.
  if (config_.decision_lane == sim::kGlobalLane) {
    std::vector<const AdmissionContext*> batch(expired.begin(), expired.end());
    const std::vector<AdmissionDecision> decisions =
        pipeline_.engine->decide_many(batch);
    for (std::size_t i = 0; i < expired.size(); ++i) {
      finalize(*expired[i], decisions[i]);
    }
    return;
  }

  // Sharded domain: evaluate the whole batch on the shard lane (in
  // parallel with sibling domains' batches), commit on the global lane at
  // the same virtual instant.
  for (AdmissionContext* ctx : expired) ctx->decision_in_flight = true;
  const std::uint64_t epoch = control_epoch_;
  simulator().schedule_on(
      config_.decision_lane, simulator().now(),
      [this, expired = std::move(expired), epoch] {
        // The batch verdicts are only valid for the dispatch-time epoch;
        // the eval is a shard-lane read of it.
        note_epoch_access(config_.cookie_namespace, /*write=*/false);
        std::vector<const AdmissionContext*> batch(expired.begin(),
                                                   expired.end());
        std::vector<AdmissionDecision> decisions =
            pipeline_.engine->decide_many(batch);
        simulator().schedule_on(
            sim::kGlobalLane, simulator().now(),
            [this, expired, epoch,
             decisions = std::move(decisions)]() mutable {
              for (std::size_t i = 0; i < expired.size(); ++i) {
                commit_decision(*expired[i], std::move(decisions[i]), epoch);
              }
            });
      });
}

bool AdmissionController::retry_queries(AdmissionContext& ctx) {
  if (ctx.retries_used >= config_.max_query_retries) return false;
  bool resent = false;
  for (const QueryTarget& target : ctx.targets) {
    // Only sides that were queried and never answered are re-asked; an
    // answered side's identity must not be re-resolved mid-decision.
    const bool unanswered = target.is_source_side
                                ? (ctx.awaiting_src && !ctx.src_response)
                                : (ctx.awaiting_dst && !ctx.dst_response);
    if (!unanswered) continue;
    if (!send_query(ctx.flow, target)) continue;
    notify([&](AdmissionObserver& o) {
      o.on_query_retry(ctx.flow, target.target);
    });
    resent = true;
  }
  if (!resent) return false;
  ++ctx.retries_used;
  // Exponential backoff (query_timeout << attempt, shift capped) plus the
  // order-independent jitter; absolute arithmetic only, so the deadline is
  // identical at any shard/worker count.
  const std::uint32_t shift = std::min<std::uint32_t>(ctx.retries_used, 10);
  const sim::SimTime deadline = simulator().now() +
                                (config_.query_timeout << shift) +
                                retry_jitter_for(ctx);
  pipeline_.collector->arm_deadline(ctx, deadline);
  if (deadline != last_scheduled_sweep_) {
    last_scheduled_sweep_ = deadline;
    simulator().schedule_at(deadline, [this]() { sweep_expired(); });
  }
  return true;
}

sim::SimTime AdmissionController::retry_jitter_for(
    const AdmissionContext& ctx) const {
  if (config_.retry_jitter <= 0) return 0;
  // A pure hash of (flow, attempt, seed) run through the SplitMix64
  // finalizer — no shared stream, so concurrent retries cannot observe
  // each other's draw order and sharded runs stay bit-identical.
  std::uint64_t h = std::hash<net::FiveTuple>{}(ctx.flow);
  h ^= config_.retry_jitter_seed +
       0x9e3779b97f4a7c15ULL * (ctx.retries_used + 1);
  util::SplitMix64 mix(h);
  return static_cast<sim::SimTime>(
      mix.next_below(static_cast<std::uint64_t>(config_.retry_jitter) + 1));
}

void AdmissionController::schedule_readmission_probe(AdmissionContext& ctx) {
  if (ctx.buffered.empty()) return;  // nothing to replay later
  const auto [it, inserted] = degraded_.try_emplace(ctx.flow);
  if (inserted) it->second.first_msg = ctx.buffered.front();
  if (it->second.probes_scheduled >= config_.max_readmission_probes) return;
  ++it->second.probes_scheduled;
  const net::FiveTuple flow = ctx.flow;
  simulator().schedule_after(config_.readmission_probe_delay,
                             [this, flow]() { probe_readmission(flow); });
}

void AdmissionController::probe_readmission(const net::FiveTuple& flow) {
  const auto it = degraded_.find(flow);
  if (it == degraded_.end()) return;  // fully re-decided in the meantime
  if (pipeline_.collector->find(flow) != nullptr) {
    return;  // a fresh admission for this flow is already in flight
  }
  // Lift the degraded cover first so the fresh verdict's entries never
  // fight an equal-priority drop.  This is a targeted removal of the
  // flow's own entries — no control-epoch bump, which would needlessly
  // re-decide unrelated in-flight verdicts.
  remove_flow_entries(flow);
  // Copy before re-entering admission: a synchronous re-degrade mutates
  // degraded_ and may invalidate `it`.
  const openflow::PacketIn msg = it->second.first_msg;
  // The replayed packet-in takes the normal admission path end to end —
  // fresh queries, shard-lane dispatch, control-epoch commit — so a
  // revocation racing the probe is handled exactly like any other flow.
  handle_new_flow(msg, flow);
}

std::size_t AdmissionController::remove_flow_entries(
    const net::FiveTuple& flow) {
  std::size_t removed = 0;
  for (const sim::NodeId id : domain_) {
    removed += topology_->switch_at(id).table().remove_if(
        [this, &flow](const openflow::FlowEntry& entry) {
          if (entry.priority != config_.flow_priority ||
              !owns_cookie(entry.cookie)) {
            return false;
          }
          const auto installed = installed_flows_.find(entry.cookie);
          return installed != installed_flows_.end() &&
                 installed->second == flow;
        });
  }
  prune_installed_flows();
  return removed;
}

void AdmissionController::maybe_decide(AdmissionContext& ctx) {
  if (ResponseCollector::ready(ctx)) decide_one(ctx, false);
}

void AdmissionController::decide_one(AdmissionContext& ctx, bool timed_out) {
  if (ctx.decision_in_flight) return;
  // Late proxy fill-in for sides that never answered.
  const std::size_t proxied = pipeline_.collector->fill_proxies_at_decide(ctx);
  for (std::size_t i = 0; i < proxied; ++i) {
    notify([&](AdmissionObserver& o) { o.on_query_proxied(ctx.flow); });
  }
  ctx.timed_out = timed_out;
  if (config_.decision_lane == sim::kGlobalLane) {
    const AdmissionDecision decision = pipeline_.engine->decide(ctx);
    finalize(ctx, decision);
    return;
  }
  // Sharded domain: the engine (shard-local policy engine, verifier and
  // caches) runs on this domain's lane; the commit runs back on the
  // global lane, same virtual instant, so sharding never changes
  // simulated timings.
  ctx.decision_in_flight = true;
  const std::uint64_t epoch = control_epoch_;
  simulator().schedule_on(
      config_.decision_lane, simulator().now(), [this, &ctx, epoch] {
        note_epoch_access(config_.cookie_namespace, /*write=*/false);
        AdmissionDecision decision = pipeline_.engine->decide(ctx);
        simulator().schedule_on(
            sim::kGlobalLane, simulator().now(),
            [this, &ctx, epoch, decision = std::move(decision)]() mutable {
              commit_decision(ctx, std::move(decision), epoch);
            });
      });
}

void AdmissionController::commit_decision(AdmissionContext& ctx,
                                          AdmissionDecision decision,
                                          std::uint64_t dispatch_epoch) {
  ctx.decision_in_flight = false;
  note_epoch_access(config_.cookie_namespace, /*write=*/false);
  if (dispatch_epoch != control_epoch_ && !config_.fault_skip_epoch_redecide) {
    // A revocation or policy swap landed between dispatch and commit; the
    // computed verdict may carry covers (or would cache a decision) from
    // the replaced control state.  Re-decide under the current engine —
    // shard lanes are quiescent while the global lane runs, so the inline
    // re-decide cannot race a sibling domain.
    decision = pipeline_.engine->decide(ctx);
  }
  finalize(ctx, decision);
}

void AdmissionController::finalize(AdmissionContext& ctx,
                                   const AdmissionDecision& decision) {
  DecisionRecord record;
  record.time = simulator().now();
  record.flow = ctx.flow;
  record.allowed = decision.allowed;
  record.timed_out = ctx.timed_out;
  record.degraded = decision.degraded;
  record.logged = decision.logged;
  record.rule = decision.rule;
  if (ctx.src_response) {
    const proto::ResponseDict src(*ctx.src_response);
    record.src_user = dict_summary(src, proto::keys::kUserId);
    record.src_app = dict_summary(src, proto::keys::kName);
  }
  if (ctx.dst_response) {
    const proto::ResponseDict dst(*ctx.dst_response);
    record.dst_user = dict_summary(dst, proto::keys::kUserId);
  }
  record.setup_latency = simulator().now() - ctx.first_seen;
  if (decision.logged) {
    IDXX_LOG(kInfo, "controller")
        << config_.name << ": log rule matched: " << ctx.flow.to_string()
        << " -> " << (decision.allowed ? "pass" : "block");
  }
  notify([&](AdmissionObserver& o) { o.on_decision(record, decision); });

  // A degraded verdict is a placeholder, not knowledge: caching it would
  // keep blocking the flow long after the daemon recovered.
  if (pipeline_.cache && !decision.degraded) {
    pipeline_.cache->store(ctx.flow, decision, simulator().now());
  }

  if (decision.degraded) {
    // Before apply_decision clears the buffer: remember the first
    // packet-in so the probe can replay it.
    schedule_readmission_probe(ctx);
  } else {
    degraded_.erase(ctx.flow);
  }

  // Stage 4: turn the verdict into flow-table state.
  apply_decision(ctx, decision);
  // Copy the key before erasing: `ctx` aliases into the collector's map.
  const net::FiveTuple key = ctx.flow;
  pipeline_.collector->erase(key);
}

void AdmissionController::release_buffered(AdmissionContext& ctx,
                                           bool allowed) {
  if (!allowed) {
    ctx.buffered.clear();
    return;
  }
  const HostInfo* src = find_host(ctx.flow.src_ip);
  const HostInfo* dst = find_host(ctx.flow.dst_ip);
  std::optional<std::vector<openflow::Hop>> hops;
  if (src != nullptr && dst != nullptr) {
    // Must match install_along_path's ECMP selection: released packets
    // are packet-out onto the path that just received the flow's entries.
    hops = topology_->path_for_flow(src->node, dst->node, ctx.flow);
  }
  std::size_t released = 0;
  for (const openflow::PacketIn& msg : ctx.buffered) {
    bool sent = false;
    if (hops) {
      for (const openflow::Hop& hop : *hops) {
        if (hop.switch_id == msg.switch_id) {
          topology_->switch_at(msg.switch_id)
              .packet_out(msg.packet, openflow::OutputAction{{hop.out_port}},
                          msg.in_port);
          sent = true;
          break;
        }
      }
      if (!sent && hops->empty() && src != nullptr && src == dst) {
        // Self-flow (src ip == dst ip): the path has no switch hops and the
        // destination sits on the packet's own ingress port.  Hairpin it
        // back — flooding instead would circulate the packet forever in
        // cyclic topologies (every downstream switch lacks an entry, so
        // each copy re-enters as a fresh packet-in).
        topology_->switch_at(msg.switch_id)
            .packet_out(msg.packet, openflow::OutputAction{{msg.in_port}},
                        msg.in_port);
        sent = true;
      }
    }
    if (!sent) {
      // Off-path or unknown: fall back to flooding from that switch.
      topology_->switch_at(msg.switch_id)
          .packet_out(msg.packet, openflow::FloodAction{}, msg.in_port);
    }
    ++released;
  }
  ctx.buffered.clear();
  notify([&](AdmissionObserver& o) { o.on_packets_released(released); });
}

std::vector<AdmissionController::FlowUsage> AdmissionController::flow_usage()
    const {
  std::unordered_map<std::uint64_t, FlowUsage> by_cookie;
  for (const sim::NodeId id : domain_) {
    for (const openflow::FlowEntry& entry :
         topology_->switch_at(id).table().entries()) {
      const auto it = installed_flows_.find(entry.cookie);
      if (it == installed_flows_.end()) continue;
      FlowUsage& usage = by_cookie[entry.cookie];
      usage.flow = it->second;
      usage.packets = std::max(usage.packets, entry.packet_count);
      usage.bytes = std::max(usage.bytes, entry.byte_count);
    }
  }
  std::vector<FlowUsage> out;
  out.reserve(by_cookie.size());
  for (auto& [cookie, usage] : by_cookie) out.push_back(usage);
  return out;
}

}  // namespace identxx::ctrl
