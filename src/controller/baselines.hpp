#pragma once

// Baseline controllers the paper compares against qualitatively:
//
//  * VanillaFirewall  — a classic stateful 5-tuple packet filter (first-
//    match ACL over network primitives).  §5 compares blast radii against
//    it; §1 motivates ident++ with its inability to tell Skype from Web on
//    port 80.
//  * EthaneController — Ethane-style centralized policy [5]: the full PF+=2
//    engine but with *no end-host information* (@src/@dst are empty; only
//    network primitives and the @flow extension work).  Shows exactly what
//    the ident++ queries add.
//  * DistributedFirewallController — related work [9]: the network forwards
//    everything; enforcement happens in the end-hosts' ingress filters
//    (host::Host::set_ingress_filter).  Packets reach the victim before
//    being discarded — the DoS weakness §6 points out.
//
// All three are AdmissionPipeline configurations of the shared
// AdmissionController skeleton: a NoQueryPlanner (no daemon round trips,
// so a packet-in resolves to install+release or drop in one control-
// channel round trip) composed with their flavour's DecisionEngine.

#include <unordered_map>

#include "controller/admission_controller.hpp"

namespace identxx::ctrl {

/// Classic firewall: ordered first-match ACL over the 5-tuple, stateful
/// (reverse direction of an allowed flow is allowed).
class VanillaFirewall : public AdmissionController {
 public:
  using AclRule = ctrl::AclRule;

  explicit VanillaFirewall(openflow::Topology* topology,
                           bool default_allow = false);

  /// Throws when the decision engine was replaced with a non-ACL engine.
  void add_rule(AclRule rule);

  /// First matching rule decides; `default_allow` otherwise.  Throws when
  /// the decision engine was replaced with a non-ACL engine.
  [[nodiscard]] bool evaluate_acl(const net::FiveTuple& flow) const;

 private:
  /// Resolved per call (never cached): replace_engine may swap the engine.
  [[nodiscard]] AclDecisionEngine& acl_engine();
  [[nodiscard]] const AclDecisionEngine& acl_engine() const;
};

/// Ethane-style controller: full PF+=2 policy but no ident++ information —
/// @src/@dst stay empty, so any `with` predicate over them fails.
class EthaneController : public AdmissionController {
 public:
  EthaneController(openflow::Topology* topology, pf::Ruleset ruleset);

  /// Throws when the decision engine was replaced with a non-PF engine.
  [[nodiscard]] const pf::PolicyEngine& engine() const;
};

/// Distributed firewall: the network passes everything; end-hosts enforce.
class DistributedFirewallController : public AdmissionController {
 public:
  explicit DistributedFirewallController(openflow::Topology* topology);
};

/// The canonical NOX demo application: a MAC-learning switch controller.
/// No security policy at all — it learns (switch, MAC) -> port bindings
/// from packet-ins, floods unknown destinations, and installs destination-
/// MAC forwarding entries once learned.  Serves as the "no enforcement"
/// reference point for the security comparisons.  (Not an admission
/// controller: it never decides anything, so it stays a raw ControlPlane.)
class LearningSwitchController : public openflow::ControlPlane {
 public:
  explicit LearningSwitchController(openflow::Topology* topology)
      : topology_(topology) {}

  void adopt_switch(sim::NodeId switch_id,
                    sim::SimTime control_latency = 100 * sim::kMicrosecond) {
    topology_->switch_at(switch_id).set_controller(this, control_latency);
  }

  void on_packet_in(const openflow::PacketIn& msg) override;

  struct Stats {
    std::uint64_t packet_ins = 0;
    std::uint64_t macs_learned = 0;
    std::uint64_t floods = 0;
    std::uint64_t entries_installed = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  struct Key {
    sim::NodeId switch_id;
    std::uint64_t mac;
    [[nodiscard]] bool operator==(const Key&) const noexcept = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return std::hash<std::uint64_t>{}((static_cast<std::uint64_t>(k.switch_id)
                                         << 48) ^
                                        k.mac);
    }
  };

  openflow::Topology* topology_;
  std::unordered_map<Key, sim::PortId, KeyHash> mac_table_;
  Stats stats_;
};

}  // namespace identxx::ctrl
