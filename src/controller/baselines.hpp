#pragma once

// Baseline controllers the paper compares against qualitatively:
//
//  * VanillaFirewall  — a classic stateful 5-tuple packet filter (first-
//    match ACL over network primitives).  §5 compares blast radii against
//    it; §1 motivates ident++ with its inability to tell Skype from Web on
//    port 80.
//  * EthaneController — Ethane-style centralized policy [5]: the full PF+=2
//    engine but with *no end-host information* (@src/@dst are empty; only
//    network primitives and the @flow extension work).  Shows exactly what
//    the ident++ queries add.
//  * DistributedFirewallController — related work [9]: the network forwards
//    everything; enforcement happens in the end-hosts' ingress filters
//    (host::Host::set_ingress_filter).  Packets reach the victim before
//    being discarded — the DoS weakness §6 points out.
//
// All three share the decide-immediately skeleton in BaselineController:
// no daemon queries, so a packet-in resolves to install+release or drop in
// one control-channel round trip.

#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "openflow/switch.hpp"
#include "openflow/topology.hpp"
#include "pf/eval.hpp"

namespace identxx::ctrl {

struct BaselineStats {
  std::uint64_t packet_ins = 0;
  std::uint64_t flows_seen = 0;
  std::uint64_t flows_allowed = 0;
  std::uint64_t flows_blocked = 0;
  std::uint64_t entries_installed = 0;
};

class BaselineController : public openflow::ControlPlane {
 public:
  explicit BaselineController(openflow::Topology* topology)
      : topology_(topology) {}

  void adopt_switch(sim::NodeId switch_id,
                    sim::SimTime control_latency = 100 * sim::kMicrosecond);
  void register_host(net::Ipv4Address ip, sim::NodeId node,
                     net::MacAddress mac);

  void on_packet_in(const openflow::PacketIn& msg) override;

  [[nodiscard]] const BaselineStats& stats() const noexcept { return stats_; }

 protected:
  /// The per-flavour decision: allow this flow?
  [[nodiscard]] virtual bool decide_flow(const net::FiveTuple& flow,
                                         const net::TenTuple& tuple) = 0;

  /// Install exact-match entries along the flow's path and emit the packet.
  void install_and_release(const openflow::PacketIn& msg,
                           const net::FiveTuple& flow);
  void install_drop(const openflow::PacketIn& msg);

  openflow::Topology* topology_;
  std::unordered_set<sim::NodeId> domain_;
  struct HostInfo {
    sim::NodeId node = sim::kInvalidNode;
    net::MacAddress mac;
  };
  std::unordered_map<net::Ipv4Address, HostInfo> hosts_;
  BaselineStats stats_;
  std::uint64_t next_cookie_ = 1;
  sim::SimTime flow_idle_timeout_ = 60 * sim::kSecond;
};

/// Classic firewall: ordered first-match ACL over the 5-tuple, stateful
/// (reverse direction of an allowed flow is allowed).
class VanillaFirewall : public BaselineController {
 public:
  struct AclRule {
    net::Cidr src{net::Ipv4Address{}, 0};   // 0.0.0.0/0 = any
    net::Cidr dst{net::Ipv4Address{}, 0};
    std::optional<net::IpProto> proto;
    std::uint16_t dst_port_low = 0;          // 0..65535 = any
    std::uint16_t dst_port_high = 65535;
    bool allow = false;
  };

  explicit VanillaFirewall(openflow::Topology* topology,
                           bool default_allow = false)
      : BaselineController(topology), default_allow_(default_allow) {}

  void add_rule(AclRule rule) { acl_.push_back(rule); }

  /// First matching rule decides; `default_allow` otherwise.
  [[nodiscard]] bool evaluate_acl(const net::FiveTuple& flow) const;

 protected:
  [[nodiscard]] bool decide_flow(const net::FiveTuple& flow,
                                 const net::TenTuple& tuple) override;

 private:
  std::vector<AclRule> acl_;
  bool default_allow_;
  std::unordered_set<net::FiveTuple> allowed_flows_;  // state table
};

/// Ethane-style controller: full PF+=2 policy but no ident++ information —
/// @src/@dst stay empty, so any `with` predicate over them fails.
class EthaneController : public BaselineController {
 public:
  EthaneController(openflow::Topology* topology, pf::Ruleset ruleset)
      : BaselineController(topology), engine_(std::move(ruleset)) {}

  [[nodiscard]] const pf::PolicyEngine& engine() const noexcept {
    return engine_;
  }

 protected:
  [[nodiscard]] bool decide_flow(const net::FiveTuple& flow,
                                 const net::TenTuple& tuple) override;

 private:
  pf::PolicyEngine engine_;
};

/// Distributed firewall: the network passes everything; end-hosts enforce.
class DistributedFirewallController : public BaselineController {
 public:
  using BaselineController::BaselineController;

 protected:
  [[nodiscard]] bool decide_flow(const net::FiveTuple&,
                                 const net::TenTuple&) override {
    return true;  // enforcement is at the receiving host
  }
};

/// The canonical NOX demo application: a MAC-learning switch controller.
/// No security policy at all — it learns (switch, MAC) -> port bindings
/// from packet-ins, floods unknown destinations, and installs destination-
/// MAC forwarding entries once learned.  Serves as the "no enforcement"
/// reference point for the security comparisons.
class LearningSwitchController : public openflow::ControlPlane {
 public:
  explicit LearningSwitchController(openflow::Topology* topology)
      : topology_(topology) {}

  void adopt_switch(sim::NodeId switch_id,
                    sim::SimTime control_latency = 100 * sim::kMicrosecond) {
    topology_->switch_at(switch_id).set_controller(this, control_latency);
  }

  void on_packet_in(const openflow::PacketIn& msg) override;

  struct Stats {
    std::uint64_t packet_ins = 0;
    std::uint64_t macs_learned = 0;
    std::uint64_t floods = 0;
    std::uint64_t entries_installed = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  struct Key {
    sim::NodeId switch_id;
    std::uint64_t mac;
    [[nodiscard]] bool operator==(const Key&) const noexcept = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return std::hash<std::uint64_t>{}((static_cast<std::uint64_t>(k.switch_id)
                                         << 48) ^
                                        k.mac);
    }
  };

  openflow::Topology* topology_;
  std::unordered_map<Key, sim::PortId, KeyHash> mac_table_;
  Stats stats_;
};

}  // namespace identxx::ctrl
