#pragma once

// The AdmissionPipeline: flow admission decomposed into pluggable stages.
//
// The paper's core loop (Figure 1: packet-in -> query daemons -> collect
// responses -> evaluate PF policy -> install path) used to live fused
// inside one monolithic controller, with the baseline controllers
// re-implementing the same adopt/register/install skeleton behind a
// second, incompatible interface.  This header splits the loop into five
// stage contracts (DESIGN.md, "AdmissionPipeline stage contract"):
//
//   QueryPlanner      — which endpoints to ask about a new flow, and with
//                       which spoofed source address (§3.2); the src-only
//                       ablation and the baselines' "ask nobody" live here.
//   ResponseCollector — pending-flow state: buffered packet-ins, arrived
//                       responses, proxy answers (§4 incremental benefit)
//                       and decision deadlines.
//   DecisionEngine    — renders the verdict.  PF+=2 evaluation for ident++
//                       and Ethane (the latter simply has no responses to
//                       look at), ACL first-match for the vanilla firewall,
//                       allow-everything for the distributed firewall.  The
//                       batched decide_many() entry point amortizes policy
//                       evaluation across simultaneous packet-ins.
//   DecisionCache     — optional TTL/LRU memo of verdicts so repeat
//                       packet-ins skip the daemon round trip (§6 ablation).
//   InstallStrategy   — turns a verdict into flow-table state: full-path vs
//                       ingress-only entries, drop-entry placement.
//
// Cross-cutting observation goes through AdmissionObserver, which subsumes
// the audit log, ControllerStats and DecisionRecord emission.  A pipeline
// is just the bundle of stages; AdmissionController (see
// admission_controller.hpp) drives it.

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "identxx/dict.hpp"
#include "identxx/wire.hpp"
#include "openflow/switch.hpp"
#include "openflow/topology.hpp"
#include "pf/eval.hpp"

namespace identxx::crypto {
class SchnorrVerifier;
}

namespace identxx::ctrl {

/// Tuning knobs; defaults mirror the paper's implied design.  The ablation
/// flags correspond to DESIGN.md §6.
struct ControllerConfig {
  std::string name = "controller";
  /// How long to wait for daemon responses before deciding with whatever
  /// information arrived.
  sim::SimTime query_timeout = 50 * sim::kMillisecond;
  /// Robustness knobs (DESIGN.md §14).  Retries beyond the initial query
  /// round: on a deadline with a side still unanswered, re-issue that
  /// side's query up to this many times with exponential backoff
  /// (query_timeout << attempt) before deciding.  0 = legacy single-shot.
  std::uint32_t max_query_retries = 0;
  /// Upper bound on the seeded jitter added to each retry deadline.  The
  /// jitter is a pure hash of (flow, attempt, retry_jitter_seed), so it is
  /// identical at any shard/worker count.  0 = no jitter.
  sim::SimTime retry_jitter = 0;
  std::uint64_t retry_jitter_seed = 0;
  /// Graceful degradation: when > 0 and retries exhaust with a queried
  /// side still silent, install a fail-closed drop cover with THIS hard
  /// timeout (tagged degraded, never cached) instead of the legacy
  /// partial-information full-TTL verdict, and schedule a re-admission
  /// probe so the flow is re-decided with full information once the
  /// daemon recovers.  0 = legacy behaviour.
  sim::SimTime degraded_cover_ttl = 0;
  sim::SimTime readmission_probe_delay = 100 * sim::kMillisecond;
  std::uint32_t max_readmission_probes = 3;
  /// Timeouts stamped on installed flow entries (0 = none).
  sim::SimTime flow_idle_timeout = 60 * sim::kSecond;
  sim::SimTime flow_hard_timeout = 0;
  /// Install entries on every switch along the path (Figure 1 step 4)
  /// versus only at the ingress switch (each later switch re-asks).
  bool install_full_path = true;
  /// Cache negative decisions as drop entries at the ingress switch.
  bool install_drop_entries = true;
  /// Query both ends (§2) or only the source.
  bool query_both_ends = true;
  /// Controller-level decision cache TTL.  When caching is active, repeat
  /// packet-ins for an already-decided flow (e.g. from later switches when
  /// install_full_path is off, or after an idle-timeout race) are answered
  /// without re-querying the daemons.  Caching is enabled when this or
  /// decision_cache_capacity is nonzero.  ttl = 0 uniformly means entries
  /// NEVER age out (both cache flavours): with a capacity that is a pure
  /// LRU bound, without one (TtlDecisionCache constructed directly) the
  /// cache only shrinks through invalidation.  It never means "bypass" —
  /// a cache that expires everything instantly would count insertions and
  /// misses while silently disabling the §6 ablation it exists for.
  /// Revocation, policy swaps and the shard control epoch invalidate
  /// cached verdicts regardless of remaining TTL.
  sim::SimTime decision_cache_ttl = 0;
  /// Bound on cached decisions (0 = unbounded).  With a bound the cache
  /// evicts least-recently-used entries (LruDecisionCache).
  std::size_t decision_cache_capacity = 0;
  /// Priority for installed per-flow entries; ident++ intercept rules are
  /// installed at kInterceptPriority and must stay on top.
  std::uint16_t flow_priority = 100;
  static constexpr std::uint16_t kInterceptPriority = 1000;
  /// Aggregated rule cache: when a decision's matched policy rule
  /// constrains only switch-visible fields (proto, ports, CIDRs), install
  /// ONE wildcard/prefix entry covering the whole rule instead of a
  /// per-flow exact entry (AggregatingInstallStrategy).  Off by default:
  /// aggregated flows bypass the controller entirely, so per-flow audit
  /// records and daemon queries are traded for table compactness.
  bool aggregate_installs = false;
  /// Bound on retained audit-log records (ring buffer: oldest records
  /// drop first, counted in AuditLogObserver::dropped()).  The default is
  /// high enough that bounded behaviour is invisible in normal runs.
  static constexpr std::size_t kDefaultAuditLogCapacity = 1 << 20;
  std::size_t audit_log_capacity = kDefaultAuditLogCapacity;
  /// Sharded-domain wiring (sharded_controller.hpp, DESIGN.md §10).  When
  /// decision_lane is a shard lane (nonzero), the DecisionEngine runs on
  /// that lane — potentially in parallel with sibling domains — and the
  /// resulting verdict commits back on the global lane at the same virtual
  /// instant, so sharding never changes simulated timings.
  sim::LaneId decision_lane = sim::kGlobalLane;
  /// Cookie namespace tag (top 16 bits of every allocated cookie).  Zero
  /// for classic standalone controllers; domain i of a sharded controller
  /// uses i + 1, so domains sharing switch tables revoke only their own
  /// entries.
  std::uint16_t cookie_namespace = 0;
  /// Route decide_many() batches through the PF engine's batched entry
  /// point (pf::PolicyEngine::evaluate_batch, DESIGN.md §11): static
  /// prefilters probed per distinct 5-tuple plus cross-flow hoisting of
  /// flow-invariant `with` predicates.  Verdicts are bit-identical either
  /// way; the flag exists as the §6-style ablation and differential
  /// oracle.  Only PolicyDecisionEngine consults it.
  bool batch_policy_eval = true;
  /// Byte budget for the PF verifier's per-key acceleration tables
  /// (crypto::KeyTierConfig::table_budget_bytes): hot keys carry a ~69 KB
  /// comb table, warm keys a ~1.3 KB GLV table, cold keys verify through
  /// the table-free GLV path, with promotion by verify frequency
  /// (DESIGN.md §15).  A fleet-scale shard tracking 10^6 principals caps
  /// its table memory here while still registering every key.  0 = the
  /// verifier's default budget.
  std::size_t key_table_budget_bytes = 0;
  /// Injected determinism mutation (model-checker self-test, DESIGN.md
  /// §13): commit shard-lane verdicts without the control-epoch
  /// re-decision, so a revoke/set_policy landing between dispatch and
  /// commit leaves the stale verdict in force.  Never set in production
  /// configurations.
  bool fault_skip_epoch_redecide = false;
};

/// One line of the audit log ("log and audit the delegates' actions", §1).
struct DecisionRecord {
  sim::SimTime time = 0;
  net::FiveTuple flow;
  bool allowed = false;
  bool timed_out = false;        ///< decided without both responses
  bool degraded = false;         ///< fail-closed cover, retries exhausted
  bool logged = false;           ///< matched rule carried PF's `log` modifier
  std::string rule;              ///< to_string of the matched rule, or "default"
  std::string src_user;          ///< @src[userID] if provided
  std::string src_app;           ///< @src[name] if provided
  std::string dst_user;          ///< @dst[userID] if provided
  sim::SimTime setup_latency = 0;  ///< first packet-in -> decision

  [[nodiscard]] bool operator==(const DecisionRecord&) const = default;
};

/// Canonical total order for merging per-domain audit logs: time first,
/// then the flow identity and verdict fields, so a merged log is
/// identical whatever the shard count that produced it.
[[nodiscard]] bool audit_record_before(const DecisionRecord& a,
                                       const DecisionRecord& b) noexcept;

struct ControllerStats {
  std::uint64_t packet_ins = 0;
  std::uint64_t flows_seen = 0;
  std::uint64_t flows_allowed = 0;
  std::uint64_t flows_blocked = 0;
  std::uint64_t queries_sent = 0;
  std::uint64_t responses_received = 0;
  std::uint64_t query_timeouts = 0;
  std::uint64_t entries_installed = 0;
  std::uint64_t buffered_packets_released = 0;
  std::uint64_t ident_transit_forwarded = 0;
  std::uint64_t responses_augmented = 0;
  std::uint64_t queries_proxied = 0;
  std::uint64_t flows_expired = 0;
  std::uint64_t flows_logged = 0;      ///< decisions from `log` rules
  std::uint64_t decision_cache_hits = 0;
  std::uint64_t query_retries = 0;       ///< re-issued queries (§14)
  std::uint64_t duplicate_responses = 0; ///< deduped daemon responses
  std::uint64_t degraded_verdicts = 0;   ///< fail-closed degraded covers

  [[nodiscard]] bool operator==(const ControllerStats&) const = default;

  /// Field-wise sum — aggregating a sharded controller's per-domain stats.
  void accumulate(const ControllerStats& other) noexcept;
};

/// Where a registered host lives (IP -> node/attachment/MAC).
struct HostInfo {
  sim::NodeId node = sim::kInvalidNode;
  net::MacAddress mac;
};

/// What a stage may see of the controller driving it.  Implemented by
/// AdmissionController; narrow on purpose so stages stay composable and
/// testable without a full controller behind them.
class AdmissionEnv {
 public:
  virtual ~AdmissionEnv() = default;
  [[nodiscard]] virtual openflow::Topology& topology() noexcept = 0;
  [[nodiscard]] virtual const std::unordered_set<sim::NodeId>& domain()
      const noexcept = 0;
  [[nodiscard]] virtual const HostInfo* find_host(net::Ipv4Address ip) const = 0;
  [[nodiscard]] virtual const ControllerConfig& config() const noexcept = 0;
  [[nodiscard]] virtual sim::Simulator& simulator() noexcept = 0;
  /// Allocate a flow-entry cookie and register it against `flow` for
  /// usage accounting (flow_usage()) and expiry attribution.
  virtual std::uint64_t allocate_cookie(const net::FiveTuple& flow) = 0;
};

/// One daemon to ask about a flow.  `spoof_src` is stamped as the query
/// packet's source address — §3.2: the flow's other endpoint, so the
/// daemon resolves the right socket.  (Defined before AdmissionContext so
/// pending flows can remember their plan for retries, DESIGN.md §14.)
struct QueryTarget {
  net::Ipv4Address target;
  net::Ipv4Address spoof_src;
  bool is_source_side = false;  ///< answer fills @src (else @dst)
};

struct QueryPlan {
  std::vector<QueryTarget> targets;  ///< empty = decide immediately
};

/// Everything collected about one flow between its first packet-in and the
/// decision (replaces the old controller-private PendingFlow).
struct AdmissionContext {
  net::FiveTuple flow;
  std::vector<openflow::PacketIn> buffered;
  std::optional<proto::Response> src_response;
  std::optional<proto::Response> dst_response;
  /// The query plan that opened this context, kept so deadline retries can
  /// re-issue exactly the unanswered sides (DESIGN.md §14).
  std::vector<QueryTarget> targets;
  std::uint32_t retries_used = 0;
  sim::SimTime first_seen = 0;
  sim::SimTime deadline = 0;       ///< 0 = no deadline armed
  std::uint64_t generation = 0;    ///< set by arm_deadline; guards sweeps
  bool awaiting_src = false;
  bool awaiting_dst = false;
  /// Set (before the engine runs) when the decision fires at the query
  /// deadline rather than on complete responses; engines may consult it.
  bool timed_out = false;
  /// A sharded domain has dispatched this context's decision to its shard
  /// lane; the verdict commits on the global lane at the same virtual
  /// instant.  Guards against double decisions (e.g. a response arriving
  /// in the same wave as the deadline sweep).
  bool decision_in_flight = false;
};

/// A DecisionEngine's verdict, decoupled from pf::Verdict so non-PF
/// engines (ACL, allow-all, test fakes) speak the same language.
struct AdmissionDecision {
  bool allowed = false;
  bool keep_state = false;  ///< also admit the reverse direction
  bool logged = false;      ///< matched rule carried the `log` modifier
  /// Fail-closed degraded verdict (DESIGN.md §14): retries exhausted with a
  /// queried side silent.  Installed as a short-TTL drop cover, never
  /// cached, and followed by a re-admission probe.
  bool degraded = false;
  std::string rule = "default";  ///< matched rule rendering, for the audit log
  /// Rule-level cover: non-empty when the matched rule's scope is
  /// expressible as a small set of wildcard/prefix FlowMatches AND no
  /// other rule can decide a covered flow differently — i.e. caching the
  /// whole rule in a switch is sound.  A single-valued rule covers with
  /// one entry; contiguous port ranges decompose into prefix-masked port
  /// entries (at most kMaxCoverEntries).  Consumed by
  /// AggregatingInstallStrategy; engines that cannot prove soundness
  /// leave it empty.
  static constexpr std::size_t kMaxCoverEntries = 8;
  std::vector<openflow::FlowMatch> covers;
};

// ---------------------------------------------------------------------------
// Stage 1: QueryPlanner
// ---------------------------------------------------------------------------

// QueryTarget/QueryPlan are declared above AdmissionContext (pending flows
// keep their plan for deadline retries).

class QueryPlanner {
 public:
  virtual ~QueryPlanner() = default;
  virtual QueryPlan plan(const net::FiveTuple& flow, AdmissionEnv& env) = 0;
};

/// ident++ planning: query the source, and the destination unless the
/// src-only ablation (config.query_both_ends = false) is active.
class EndpointQueryPlanner : public QueryPlanner {
 public:
  QueryPlan plan(const net::FiveTuple& flow, AdmissionEnv& env) override;
};

/// Baseline planning: ask nobody, decide from network primitives alone.
class NoQueryPlanner : public QueryPlanner {
 public:
  QueryPlan plan(const net::FiveTuple&, AdmissionEnv&) override { return {}; }
};

// ---------------------------------------------------------------------------
// Stage 2: ResponseCollector
// ---------------------------------------------------------------------------

/// Pending-flow bookkeeping: one AdmissionContext per undecided flow,
/// response matching, proxy answers and decision deadlines.  Contexts are
/// stable in memory until erase().
class ResponseCollector {
 public:
  virtual ~ResponseCollector() = default;

  struct BeginResult {
    AdmissionContext* context = nullptr;
    bool inserted = false;  ///< false: decision already in flight
  };

  /// Start (or join) the pending entry for `flow`; `msg` is buffered either
  /// way.
  virtual BeginResult begin(const net::FiveTuple& flow,
                            const openflow::PacketIn& msg, sim::SimTime now);

  [[nodiscard]] AdmissionContext* find(const net::FiveTuple& flow);

  /// Match an on-the-wire response to a pending flow: the responder may be
  /// the flow's source or its destination.  Fills the matching slot and
  /// returns the context, or nullptr when no pending flow matches (a
  /// response transiting this domain).  A response for a slot that is
  /// already filled (a duplicated channel delivery, or a retry's answer
  /// crossing the original) is NOT applied — first answer wins — and is
  /// flagged through `duplicate` when the caller asks (DESIGN.md §14).
  virtual AdmissionContext* accept_response(net::Ipv4Address responder,
                                            net::Ipv4Address peer,
                                            const proto::Response& response,
                                            bool* duplicate = nullptr);

  /// Both sides answered (or were never asked)?
  [[nodiscard]] static bool ready(const AdmissionContext& ctx) noexcept {
    return (!ctx.awaiting_src || ctx.src_response) &&
           (!ctx.awaiting_dst || ctx.dst_response);
  }

  // -- proxy answers (§4 incremental benefit) -------------------------------

  /// Answer queries for `ip` on the host's behalf (host without a daemon).
  void set_proxy(net::Ipv4Address ip, proto::Section section);

  /// Fill sides that were never queried from configured proxy sections.
  /// Called right after planning; the destination side is only proxied when
  /// the deployment queries both ends.  Returns sections filled.
  std::size_t fill_proxies_at_begin(AdmissionContext& ctx,
                                    bool query_both_ends);

  /// Late fill-in at decision time for any side that never answered
  /// (queried-but-timed-out included).  Returns sections filled.
  std::size_t fill_proxies_at_decide(AdmissionContext& ctx);

  // -- deadlines ------------------------------------------------------------

  /// Record `ctx`'s decision deadline.  First-round deadlines arrive in
  /// order (constant timeout), so insertion is an O(1) append; a retry's
  /// backed-off deadline may land out of order and is placed by a sorted
  /// insert, keeping expiry pops O(expired), not O(pending).
  void arm_deadline(AdmissionContext& ctx, sim::SimTime deadline);

  /// Pending contexts whose deadline has passed, oldest first.  Consumes
  /// the matching queue entries.
  [[nodiscard]] std::vector<AdmissionContext*> expired(sim::SimTime now);

  virtual void erase(const net::FiveTuple& flow);

  [[nodiscard]] std::size_t pending_count() const noexcept {
    return pending_.size();
  }

 private:
  [[nodiscard]] bool fill_proxy(AdmissionContext& ctx, bool source_side);

  struct Deadline {
    sim::SimTime at = 0;
    std::uint64_t generation = 0;
    net::FiveTuple flow;
  };

  std::unordered_map<net::FiveTuple, AdmissionContext> pending_;
  std::unordered_map<net::Ipv4Address, proto::Section> proxies_;
  std::deque<Deadline> deadlines_;  ///< non-decreasing in `at`
  std::uint64_t generation_counter_ = 0;
};

// ---------------------------------------------------------------------------
// Stage 3: DecisionEngine
// ---------------------------------------------------------------------------

class DecisionEngine {
 public:
  virtual ~DecisionEngine() = default;

  virtual AdmissionDecision decide(const AdmissionContext& ctx) = 0;

  /// Batched decision entry point: contexts that became decidable at the
  /// same instant (a packet-in storm hitting one query deadline) are
  /// decided together so engines can amortize evaluation — duplicate flows
  /// in one batch are evaluated once.  The default just loops decide().
  virtual std::vector<AdmissionDecision> decide_many(
      const std::vector<const AdmissionContext*>& batch);
};

/// PF+=2 evaluation (§3.3).  Drives both the ident++ controller and the
/// Ethane baseline: Ethane simply never has responses, so @src/@dst stay
/// empty and only network primitives plus the @flow extension match.
/// Fails closed (block) on PolicyError — administrator configuration
/// errors must not admit traffic.
class PolicyDecisionEngine : public DecisionEngine {
 public:
  explicit PolicyDecisionEngine(pf::Ruleset ruleset);
  /// `honor_keep_state = false` strips `keep state` from verdicts (the
  /// Ethane baseline: reverse traffic re-decides on its own packet-in).
  PolicyDecisionEngine(pf::Ruleset ruleset, pf::FunctionRegistry registry,
                       bool honor_keep_state = true);

  AdmissionDecision decide(const AdmissionContext& ctx) override;
  /// Memoizes by 5-tuple within the batch, then decides the distinct flows
  /// through one pf::PolicyEngine::evaluate_batch call (prefilter probing
  /// + hoisted predicates, DESIGN.md §11) when batch evaluation is on;
  /// otherwise loops decide().  On PolicyError the whole batch falls back
  /// to the per-flow path so each flow fails closed independently.
  std::vector<AdmissionDecision> decide_many(
      const std::vector<const AdmissionContext*>& batch) override;

  /// Toggle the batched PF path (ControllerConfig::batch_policy_eval is
  /// applied here by AdmissionController).  Default on.
  void set_batch_eval(bool enabled) noexcept { batch_eval_ = enabled; }
  [[nodiscard]] bool batch_eval() const noexcept { return batch_eval_; }

  /// Cap the verifier's per-key acceleration-table memory
  /// (ControllerConfig::key_table_budget_bytes is applied here by
  /// AdmissionController).  Re-seeds already-registered dict keys into the
  /// new budget; no-op for engines without a verifier.
  void set_key_table_budget(std::size_t bytes);

  [[nodiscard]] const pf::PolicyEngine& policy_engine() const noexcept {
    return *engine_;
  }

  /// The precomputed rule covers for rule index `i` (tests/inspection):
  /// non-empty iff caching rule `i` as that set of wildcard/prefix-masked
  /// entries is sound.  Port ranges decompose into several entries.
  [[nodiscard]] const std::vector<openflow::FlowMatch>& rule_cover(
      std::size_t i) const {
    return covers_.at(i);
  }

  /// The Schnorr verifier behind the policy's `verify` builtin (per-key
  /// tables + bounded memo); nullptr for registries without it.  Keys
  /// embedded in the policy's dicts are registered at engine construction.
  [[nodiscard]] crypto::SchnorrVerifier* verifier() const noexcept;

 private:
  [[nodiscard]] pf::FlowContext make_flow_context(
      const AdmissionContext& ctx) const;
  [[nodiscard]] AdmissionDecision to_decision(const pf::Verdict& verdict) const;

  std::unique_ptr<pf::PolicyEngine> engine_;
  bool honor_keep_state_ = true;
  bool batch_eval_ = true;
  /// Per-rule aggregation covers, computed once from the ruleset.
  std::vector<std::vector<openflow::FlowMatch>> covers_;
};

/// Classic firewall rule: first-match ACL over network primitives.
struct AclRule {
  net::Cidr src{net::Ipv4Address{}, 0};  // 0.0.0.0/0 = any
  net::Cidr dst{net::Ipv4Address{}, 0};
  std::optional<net::IpProto> proto;
  std::uint16_t dst_port_low = 0;  // 0..65535 = any
  std::uint16_t dst_port_high = 65535;
  bool allow = false;
};

/// Stateful 5-tuple packet filter: ordered first-match ACL, with the
/// reverse direction of an allowed flow admitted from the state table.
class AclDecisionEngine : public DecisionEngine {
 public:
  explicit AclDecisionEngine(bool default_allow) : default_allow_(default_allow) {}

  void add_rule(AclRule rule) { acl_.push_back(rule); }

  /// First matching rule decides; `default_allow` otherwise.
  [[nodiscard]] bool evaluate_acl(const net::FiveTuple& flow) const;

  AdmissionDecision decide(const AdmissionContext& ctx) override;

 private:
  std::vector<AclRule> acl_;
  bool default_allow_;
  std::unordered_set<net::FiveTuple> allowed_flows_;  // state table
};

/// Distributed firewall [9]: the network forwards everything; enforcement
/// happens in the end-hosts' ingress filters.
class AllowAllDecisionEngine : public DecisionEngine {
 public:
  AdmissionDecision decide(const AdmissionContext&) override {
    AdmissionDecision decision;
    decision.allowed = true;
    decision.rule = "pass (end-host enforced)";
    return decision;
  }
};

// ---------------------------------------------------------------------------
// Stage 3b: DecisionCache
// ---------------------------------------------------------------------------

class DecisionCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t expirations = 0;   ///< entries dropped because TTL passed
    std::uint64_t evictions = 0;     ///< entries dropped for capacity
    std::uint64_t invalidations = 0; ///< entries dropped by invalidate_if/clear
  };

  virtual ~DecisionCache() = default;

  virtual std::optional<AdmissionDecision> lookup(const net::FiveTuple& flow,
                                                  sim::SimTime now) = 0;
  virtual void store(const net::FiveTuple& flow,
                     const AdmissionDecision& decision, sim::SimTime now) = 0;

  /// Drop cached decisions whose flow matches `pred`; returns entries
  /// dropped.  Revocation MUST call this: a revoked flow silently
  /// re-admitted from cache would defeat revoke_if entirely.
  virtual std::size_t invalidate_if(
      const std::function<bool(const net::FiveTuple&)>& pred) = 0;

  virtual void clear() = 0;
  [[nodiscard]] virtual std::size_t size() const noexcept = 0;

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 protected:
  Stats stats_;
};

/// Unbounded TTL cache: every entry expires `ttl` after insertion.
/// ttl = 0 means entries never expire (matching LruDecisionCache's
/// convention; see ControllerConfig::decision_cache_ttl) — the cache then
/// only shrinks through invalidate_if/clear.
class TtlDecisionCache : public DecisionCache {
 public:
  explicit TtlDecisionCache(sim::SimTime ttl) : ttl_(ttl) {}

  std::optional<AdmissionDecision> lookup(const net::FiveTuple& flow,
                                          sim::SimTime now) override;
  void store(const net::FiveTuple& flow, const AdmissionDecision& decision,
             sim::SimTime now) override;
  std::size_t invalidate_if(
      const std::function<bool(const net::FiveTuple&)>& pred) override;
  void clear() override;
  [[nodiscard]] std::size_t size() const noexcept override {
    return entries_.size();
  }

 private:
  struct Entry {
    AdmissionDecision decision;
    sim::SimTime expires = 0;
  };
  sim::SimTime ttl_;
  std::unordered_map<net::FiveTuple, Entry> entries_;
};

/// Capacity-bounded LRU cache with optional TTL (0 = entries never age
/// out, only eviction bounds them).  Lookup refreshes recency.
class LruDecisionCache : public DecisionCache {
 public:
  LruDecisionCache(std::size_t capacity, sim::SimTime ttl);

  std::optional<AdmissionDecision> lookup(const net::FiveTuple& flow,
                                          sim::SimTime now) override;
  void store(const net::FiveTuple& flow, const AdmissionDecision& decision,
             sim::SimTime now) override;
  std::size_t invalidate_if(
      const std::function<bool(const net::FiveTuple&)>& pred) override;
  void clear() override;
  [[nodiscard]] std::size_t size() const noexcept override {
    return entries_.size();
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Entry {
    net::FiveTuple flow;
    AdmissionDecision decision;
    sim::SimTime expires = 0;  ///< 0 = no TTL
  };
  using Order = std::list<Entry>;

  std::size_t capacity_;
  sim::SimTime ttl_;
  Order order_;  ///< front = most recently used
  std::unordered_map<net::FiveTuple, Order::iterator> entries_;
};

// ---------------------------------------------------------------------------
// Stage 4: InstallStrategy
// ---------------------------------------------------------------------------

class InstallStrategy {
 public:
  virtual ~InstallStrategy() = default;

  /// Install entries admitting `ctx.flow`; `decision` carries the
  /// optional rule-level cover.  Returns entries installed.
  virtual std::size_t install_allow(AdmissionEnv& env,
                                    const AdmissionContext& ctx,
                                    const AdmissionDecision& decision) = 0;

  /// Install entries discarding `ctx.flow`; returns entries installed.
  virtual std::size_t install_drop(AdmissionEnv& env,
                                   const AdmissionContext& ctx,
                                   const AdmissionDecision& decision) = 0;
};

/// Figure 1 step 4 placement: exact-match entries along the flow's path —
/// every domain switch, or only the first (ingress-only ablation); drop
/// entries at the ingress switch when config.install_drop_entries is set.
class PathInstallStrategy : public InstallStrategy {
 public:
  std::size_t install_allow(AdmissionEnv& env, const AdmissionContext& ctx,
                            const AdmissionDecision& decision) override;
  std::size_t install_drop(AdmissionEnv& env, const AdmissionContext& ctx,
                           const AdmissionDecision& decision) override;

 protected:
  /// The shared Figure-1-step-4 walk: install allow entries along
  /// ctx.flow's domain path.  With `fixed_match` set (aggregation), that
  /// match is installed verbatim and hops already carrying an identical
  /// live entry are skipped; otherwise each hop gets a per-flow exact
  /// entry (in_port wildcarded at the host-facing ingress).  The cookie
  /// is allocated lazily on the first actual install.
  static std::size_t install_along_path(AdmissionEnv& env,
                                        const AdmissionContext& ctx,
                                        const openflow::FlowMatch* fixed_match);

  /// Shared drop placement: one entry with `match` at the flow's ingress
  /// switch, honouring config.install_drop_entries.  With `dedupe`, an
  /// identical live entry suppresses the install.  Degraded verdicts get
  /// the short config.degraded_cover_ttl hard timeout instead of the
  /// full-TTL stamps (DESIGN.md §14).
  static std::size_t install_drop_at_ingress(AdmissionEnv& env,
                                             const AdmissionContext& ctx,
                                             const AdmissionDecision& decision,
                                             const openflow::FlowMatch& match,
                                             bool dedupe);
};

/// The aggregated rule cache (§3.1 scaled up, SRMCA-style forwarding-state
/// aggregation): when the decision carries rule-level covers, install that
/// small set of wildcard/prefix entries caching the whole rule instead of
/// a per-flow exact entry, so a port scan / flash crowd covered by one
/// rule costs a handful of table entries and one controller round trip
/// total.  Single-valued rules cover with one entry; a contiguous port
/// range decomposes into at most kMaxCoverEntries prefix-masked port
/// entries.  Allow entries are narrowed to the flow's destination host
/// (/32) because the output port is destination-determined; drop entries
/// cache the rule's full scope at the ingress switch.  Decisions without
/// covers fall back to the exact per-flow placement.
///
/// Multipath (DESIGN.md §12): a cover is installed along the triggering
/// flow's ECMP-selected path, end to end, so every later flow the cover
/// captures rides that path's entries to the destination — covered flows
/// are pinned to the cover's install path rather than their own hash
/// pick.  Delivery stays sound (the install path reaches the /32
/// destination from every one of its switches) and verdicts are
/// unaffected (path choice is invisible to the policy).
class AggregatingInstallStrategy : public PathInstallStrategy {
 public:
  std::size_t install_allow(AdmissionEnv& env, const AdmissionContext& ctx,
                            const AdmissionDecision& decision) override;
  std::size_t install_drop(AdmissionEnv& env, const AdmissionContext& ctx,
                           const AdmissionDecision& decision) override;

  /// Entry installed as a rule cover (wildcards beyond the in_port bit
  /// PathInstallStrategy sometimes uses, or a sub-/32 prefix)?  Used by
  /// revocation/policy-reload to flush aggregates specifically.
  [[nodiscard]] static bool is_aggregate_entry(
      const openflow::FlowEntry& entry) noexcept;
};

// ---------------------------------------------------------------------------
// Observation
// ---------------------------------------------------------------------------

/// Cross-cutting hook into every pipeline event.  Subsumes the audit log,
/// ControllerStats and DecisionRecord emission; attach additional
/// observers for tracing, metrics export, anomaly detection.
class AdmissionObserver {
 public:
  virtual ~AdmissionObserver() = default;

  virtual void on_packet_in(const openflow::PacketIn&) {}
  virtual void on_flow_seen(const net::FiveTuple&) {}
  virtual void on_query_sent(const net::FiveTuple&, net::Ipv4Address) {}
  virtual void on_response_received(net::Ipv4Address /*responder*/) {}
  virtual void on_query_timeout(const net::FiveTuple&) {}
  virtual void on_query_retry(const net::FiveTuple&, net::Ipv4Address) {}
  virtual void on_duplicate_response(net::Ipv4Address /*responder*/) {}
  virtual void on_query_proxied(const net::FiveTuple&) {}
  virtual void on_cache_hit(const net::FiveTuple&, const AdmissionDecision&) {}
  virtual void on_decision(const DecisionRecord&, const AdmissionDecision&) {}
  virtual void on_entries_installed(std::size_t /*count*/) {}
  virtual void on_packets_released(std::size_t /*count*/) {}
  virtual void on_flow_expired(std::uint64_t /*cookie*/) {}
  virtual void on_transit_forwarded(const net::FiveTuple&) {}
  virtual void on_response_augmented(const net::FiveTuple&) {}
};

/// Populates ControllerStats from pipeline events.
class StatsObserver : public AdmissionObserver {
 public:
  [[nodiscard]] const ControllerStats& stats() const noexcept { return stats_; }

  void on_packet_in(const openflow::PacketIn&) override { ++stats_.packet_ins; }
  void on_flow_seen(const net::FiveTuple&) override { ++stats_.flows_seen; }
  void on_query_sent(const net::FiveTuple&, net::Ipv4Address) override {
    ++stats_.queries_sent;
  }
  void on_response_received(net::Ipv4Address) override {
    ++stats_.responses_received;
  }
  void on_query_timeout(const net::FiveTuple&) override {
    ++stats_.query_timeouts;
  }
  void on_query_retry(const net::FiveTuple&, net::Ipv4Address) override {
    ++stats_.query_retries;
  }
  void on_duplicate_response(net::Ipv4Address) override {
    ++stats_.duplicate_responses;
  }
  void on_query_proxied(const net::FiveTuple&) override {
    ++stats_.queries_proxied;
  }
  void on_cache_hit(const net::FiveTuple&, const AdmissionDecision&) override {
    ++stats_.decision_cache_hits;
  }
  void on_decision(const DecisionRecord& record,
                   const AdmissionDecision&) override {
    if (record.allowed) {
      ++stats_.flows_allowed;
    } else {
      ++stats_.flows_blocked;
    }
    if (record.logged) ++stats_.flows_logged;
    if (record.degraded) ++stats_.degraded_verdicts;
  }
  void on_entries_installed(std::size_t count) override {
    stats_.entries_installed += count;
  }
  void on_packets_released(std::size_t count) override {
    stats_.buffered_packets_released += count;
  }
  void on_flow_expired(std::uint64_t) override { ++stats_.flows_expired; }
  void on_transit_forwarded(const net::FiveTuple&) override {
    ++stats_.ident_transit_forwarded;
  }
  void on_response_augmented(const net::FiveTuple&) override {
    ++stats_.responses_augmented;
  }

 private:
  ControllerStats stats_;
};

/// Appends a DecisionRecord per decision ("log and audit", §1).  Retention
/// is bounded (ring-buffer semantics): beyond `capacity` records the
/// oldest drop first and are counted in dropped() — the seed grew without
/// bound under sustained traffic.
class AuditLogObserver : public AdmissionObserver {
 public:
  explicit AuditLogObserver(
      std::size_t capacity = ControllerConfig::kDefaultAuditLogCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  [[nodiscard]] const std::deque<DecisionRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Records discarded to stay within capacity.
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  void on_decision(const DecisionRecord& record,
                   const AdmissionDecision&) override {
    if (records_.size() >= capacity_) {
      records_.pop_front();
      ++dropped_;
    }
    records_.push_back(record);
  }

 private:
  std::size_t capacity_;
  std::deque<DecisionRecord> records_;
  std::uint64_t dropped_ = 0;
};

// ---------------------------------------------------------------------------
// The pipeline
// ---------------------------------------------------------------------------

/// A bundle of admission stages.  The named factories below are the three
/// baselines and ident++ expressed as configurations of the same API; any
/// stage can be swapped afterwards (or built from scratch) for new
/// controller flavours.
struct AdmissionPipeline {
  std::unique_ptr<QueryPlanner> planner;
  std::unique_ptr<ResponseCollector> collector;
  std::unique_ptr<DecisionEngine> engine;
  std::unique_ptr<DecisionCache> cache;  ///< nullptr = no decision caching
  std::unique_ptr<InstallStrategy> installer;

  /// Fill any unset stage with its default (EndpointQueryPlanner,
  /// ResponseCollector, PathInstallStrategy; engine stays required).
  AdmissionPipeline& finish(const ControllerConfig& config);

  /// The paper's controller: query endpoints, evaluate PF+=2, install the
  /// path.  (Cache creation happens in finish(), from the controller's
  /// config.)
  static AdmissionPipeline identxx(pf::Ruleset ruleset,
                                   pf::FunctionRegistry registry);
  /// Ethane-style [5]: PF+=2 with no end-host information.
  static AdmissionPipeline ethane(pf::Ruleset ruleset);
  /// Classic stateful 5-tuple packet filter.
  static AdmissionPipeline vanilla(bool default_allow);
  /// Distributed firewall [9]: network admits all, hosts enforce.
  static AdmissionPipeline distributed();
};

}  // namespace identxx::ctrl
