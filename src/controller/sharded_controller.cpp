#include "controller/sharded_controller.hpp"

#include <algorithm>

#include "identxx/wire.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace identxx::ctrl {

ShardedAdmissionController::ShardedAdmissionController(
    openflow::Topology* topology, pf::Ruleset ruleset,
    std::uint32_t shard_count, ControllerConfig config)
    : topology_(topology), map_(shard_count) {
  if (topology == nullptr) {
    throw Error("ShardedAdmissionController: null topology");
  }
  const std::uint32_t shards = map_.shard_count();
  topology_->simulator().configure_shard_lanes(shards);
  domains_.reserve(shards);
  for (std::uint32_t i = 0; i < shards; ++i) {
    ControllerConfig domain_config = config;
    domain_config.name = config.name + "/d" + std::to_string(i);
    domain_config.decision_lane = static_cast<sim::LaneId>(i + 1);
    domain_config.cookie_namespace = static_cast<std::uint16_t>(i + 1);
    // Every domain evaluates the same policy, but with its own engine,
    // registry and verifier — shared-nothing per shard.
    domains_.push_back(std::make_unique<IdentxxController>(
        topology_, ruleset, pf::FunctionRegistry::with_builtins(),
        std::move(domain_config)));
  }
}

void ShardedAdmissionController::adopt_switch(sim::NodeId switch_id,
                                              sim::SimTime control_latency) {
  openflow::Switch& sw = topology_->switch_at(switch_id);
  sw.set_controller(this, control_latency);
  IdentxxController::install_intercept_rules(sw);
  map_.bind_switch(switch_id, next_switch_shard_++);
  // A flow's path may cross every switch, so every domain installs on the
  // whole fabric; cookie namespaces keep their entries distinguishable.
  for (const auto& domain : domains_) domain->join_domain(switch_id);
}

void ShardedAdmissionController::register_host(net::Ipv4Address ip,
                                               sim::NodeId node,
                                               net::MacAddress mac) {
  for (const auto& domain : domains_) domain->register_host(ip, node, mac);
}

std::size_t ShardedAdmissionController::revoke_all() {
  // Epoch-ordered fan-out: domains revoke in shard order on the global
  // lane; each bump makes in-flight shard-lane decisions re-decide at
  // commit, so no stale cover or cached verdict survives anywhere.
  std::size_t removed = 0;
  for (const auto& domain : domains_) removed += domain->revoke_all();
  return removed;
}

std::size_t ShardedAdmissionController::revoke_if(
    const std::function<bool(const net::FiveTuple&)>& pred) {
  std::size_t removed = 0;
  for (const auto& domain : domains_) removed += domain->revoke_if(pred);
  return removed;
}

void ShardedAdmissionController::set_policy(pf::Ruleset ruleset) {
  for (const auto& domain : domains_) domain->set_policy(ruleset);
}

void ShardedAdmissionController::set_compromised(bool compromised) noexcept {
  compromised_ = compromised;
  for (const auto& domain : domains_) domain->set_compromised(compromised);
}

void ShardedAdmissionController::seed_query_ports(std::uint64_t seed) {
  // Independent per-shard streams: domain i's stream is derived from
  // (seed, i) alone, so its draw order never depends on sibling domains —
  // identical seeds replay identically at any shard count.
  for (std::uint32_t i = 0; i < domains_.size(); ++i) {
    util::SplitMix64 derive(seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
    domains_[i]->seed_query_ports(derive.next());
  }
}

ControllerStats ShardedAdmissionController::aggregated_stats() const {
  ControllerStats total;
  for (const auto& domain : domains_) total.accumulate(domain->stats());
  return total;
}

std::vector<DecisionRecord> ShardedAdmissionController::merged_audit_log()
    const {
  std::vector<DecisionRecord> merged;
  for (const auto& domain : domains_) {
    merged.insert(merged.end(), domain->audit_log().begin(),
                  domain->audit_log().end());
  }
  std::sort(merged.begin(), merged.end(), audit_record_before);
  return merged;
}

std::size_t ShardedAdmissionController::installed_flow_count() const noexcept {
  std::size_t total = 0;
  for (const auto& domain : domains_) total += domain->installed_flow_count();
  return total;
}

void ShardedAdmissionController::dispatch_ident(const openflow::PacketIn& msg,
                                                const net::FiveTuple& flow) {
  if (flow.dst_port == proto::kIdentPort) {
    // A query transiting our fabric (some other firewall asking one of the
    // hosts behind us): the ingress switch's bound domain handles it.
    domains_[map_.switch_shard(msg.switch_id)]->on_packet_in(msg);
    return;
  }
  // A response.  The packet's own 5-tuple carries the query's ephemeral
  // ports; the *queried flow* — which determines the owning shard — is
  // embedded in the response body, with its ports in flow orientation.
  // The responder may be the flow's source OR its destination, and the
  // two orientations can hash to different shards, so probe both domains'
  // collectors; exactly one consumes (and counts) a matching response.
  // Malformed payloads go to the ingress switch's domain, which warns and
  // drops exactly as a standalone controller would.
  proto::Response response;
  try {
    response = proto::Response::parse(msg.packet.payload_text());
  } catch (const ParseError&) {
    domains_[map_.switch_shard(msg.switch_id)]->on_packet_in(msg);
    return;
  }
  const net::FiveTuple responder_as_src{msg.packet.ip.src, msg.packet.ip.dst,
                                        response.proto, response.src_port,
                                        response.dst_port};
  const net::FiveTuple responder_as_dst{msg.packet.ip.dst, msg.packet.ip.src,
                                        response.proto, response.src_port,
                                        response.dst_port};
  const std::uint32_t shard_a = map_.shard_of(responder_as_src);
  const std::uint32_t shard_b = map_.shard_of(responder_as_dst);
  if (domains_[shard_a]->try_consume_response(msg, response)) {
    domains_[shard_a]->observe_packet_in(msg);
    return;
  }
  if (shard_b != shard_a &&
      domains_[shard_b]->try_consume_response(msg, response)) {
    domains_[shard_b]->observe_packet_in(msg);
    return;
  }
  // Matched nowhere: a response transiting our fabric — the ingress
  // switch's bound domain augments/forwards it.
  IdentxxController& transit = *domains_[map_.switch_shard(msg.switch_id)];
  transit.observe_packet_in(msg);
  transit.handle_transit_response(msg, response);
}

void ShardedAdmissionController::on_packet_in(const openflow::PacketIn& msg) {
  const net::FiveTuple flow = msg.packet.five_tuple();
  if (compromised_) {
    // §5.1 parity with a standalone controller: no response parsing or
    // consumption — the owning domain's compromised path flood-installs
    // and forwards everything.
    domain_for_flow(flow).on_packet_in(msg);
    return;
  }
  if (proto::is_ident_traffic(flow)) {
    dispatch_ident(msg, flow);
    return;
  }
  domain_for_flow(flow).on_packet_in(msg);
}

void ShardedAdmissionController::on_flow_removed(
    const openflow::FlowRemovedMsg& msg) {
  const std::uint32_t tag = ShardMap::cookie_shard_tag(msg.entry.cookie);
  if (tag == 0 || tag > domains_.size()) return;  // boot rule or foreign
  domains_[tag - 1]->on_flow_removed(msg);
}

}  // namespace identxx::ctrl
