#include "controller/admission.hpp"

#include <algorithm>
#include <span>
#include <tuple>

#include "crypto/verifier.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace identxx::ctrl {

// ---------------------------------------------------------------- planner

QueryPlan EndpointQueryPlanner::plan(const net::FiveTuple& flow,
                                     AdmissionEnv& env) {
  // Figure 1 step 3: query both ends of the flow, each with the other
  // endpoint spoofed as the query's source (§3.2).
  QueryPlan plan;
  plan.targets.push_back(QueryTarget{flow.src_ip, flow.dst_ip, true});
  if (env.config().query_both_ends) {
    plan.targets.push_back(QueryTarget{flow.dst_ip, flow.src_ip, false});
  }
  return plan;
}

// ---------------------------------------------------------------- collector

ResponseCollector::BeginResult ResponseCollector::begin(
    const net::FiveTuple& flow, const openflow::PacketIn& msg,
    sim::SimTime now) {
  const auto [it, inserted] = pending_.try_emplace(flow);
  AdmissionContext& ctx = it->second;
  ctx.buffered.push_back(msg);
  if (inserted) {
    ctx.flow = flow;
    ctx.first_seen = now;
  }
  return BeginResult{&ctx, inserted};
}

AdmissionContext* ResponseCollector::find(const net::FiveTuple& flow) {
  const auto it = pending_.find(flow);
  return it == pending_.end() ? nullptr : &it->second;
}

AdmissionContext* ResponseCollector::accept_response(
    net::Ipv4Address responder, net::Ipv4Address peer,
    const proto::Response& response, bool* duplicate) {
  if (duplicate != nullptr) *duplicate = false;
  // Responder was the flow source?
  const net::FiveTuple as_src{responder, peer, response.proto,
                              response.src_port, response.dst_port};
  if (const auto it = pending_.find(as_src); it != pending_.end()) {
    if (it->second.src_response) {
      // First answer wins: a duplicated delivery (or a retry's answer
      // crossing the original) must not rewrite identity mid-decision.
      if (duplicate != nullptr) *duplicate = true;
    } else {
      it->second.src_response = response;
    }
    return &it->second;
  }
  // Responder was the flow destination?
  const net::FiveTuple as_dst{peer, responder, response.proto,
                              response.src_port, response.dst_port};
  if (const auto it = pending_.find(as_dst); it != pending_.end()) {
    if (it->second.dst_response) {
      if (duplicate != nullptr) *duplicate = true;
    } else {
      it->second.dst_response = response;
    }
    return &it->second;
  }
  return nullptr;
}

void ResponseCollector::set_proxy(net::Ipv4Address ip, proto::Section section) {
  proxies_[ip] = std::move(section);
}

bool ResponseCollector::fill_proxy(AdmissionContext& ctx, bool source_side) {
  std::optional<proto::Response>& slot =
      source_side ? ctx.src_response : ctx.dst_response;
  if (slot) return false;
  const auto proxy =
      proxies_.find(source_side ? ctx.flow.src_ip : ctx.flow.dst_ip);
  if (proxy == proxies_.end()) return false;
  proto::Response response;
  response.proto = ctx.flow.proto;
  response.src_port = ctx.flow.src_port;
  response.dst_port = ctx.flow.dst_port;
  response.append_section(proxy->second);
  slot = std::move(response);
  return true;
}

std::size_t ResponseCollector::fill_proxies_at_begin(AdmissionContext& ctx,
                                                     bool query_both_ends) {
  // Hosts we cannot query may have proxy answers configured (§4
  // incremental benefit).
  std::size_t filled = 0;
  if (!ctx.awaiting_src && fill_proxy(ctx, true)) ++filled;
  if (!ctx.awaiting_dst && query_both_ends && fill_proxy(ctx, false)) ++filled;
  return filled;
}

std::size_t ResponseCollector::fill_proxies_at_decide(AdmissionContext& ctx) {
  std::size_t filled = 0;
  if (fill_proxy(ctx, true)) ++filled;
  if (fill_proxy(ctx, false)) ++filled;
  return filled;
}

void ResponseCollector::arm_deadline(AdmissionContext& ctx,
                                     sim::SimTime deadline) {
  ctx.deadline = deadline;
  ctx.generation = ++generation_counter_;
  Deadline entry{deadline, ctx.generation, ctx.flow};
  if (deadlines_.empty() || deadlines_.back().at <= deadline) {
    // First-round deadlines (constant timeout) always land here: O(1).
    deadlines_.push_back(std::move(entry));
    return;
  }
  // A retry's backed-off deadline can undercut pending first-round ones;
  // keep the queue sorted so expired() stays a front-pop.
  const auto pos = std::upper_bound(
      deadlines_.begin(), deadlines_.end(), deadline,
      [](sim::SimTime at, const Deadline& d) { return at < d.at; });
  deadlines_.insert(pos, std::move(entry));
}

std::vector<AdmissionContext*> ResponseCollector::expired(sim::SimTime now) {
  std::vector<AdmissionContext*> out;
  while (!deadlines_.empty() && deadlines_.front().at <= now) {
    const Deadline deadline = deadlines_.front();
    deadlines_.pop_front();
    AdmissionContext* ctx = find(deadline.flow);
    // The generation (globally unique per arm) skips flows decided in the
    // meantime and re-created pending entries for the same 5-tuple — even
    // ones re-armed at the very same timestamp, which a deadline-only
    // check would hand out twice.
    if (ctx == nullptr || ctx->generation != deadline.generation) continue;
    out.push_back(ctx);
  }
  return out;
}

void ResponseCollector::erase(const net::FiveTuple& flow) {
  pending_.erase(flow);
}

// ---------------------------------------------------------------- covers

namespace {

// Aggregation soundness analysis.  A rule R may be cached in the switches
// as one wildcard/prefix entry iff every flow the entry matches would get
// R's verdict from the full policy.  With last-match-wins + `quick`
// semantics that holds exactly when:
//   * R's own scope is expressible as a FlowMatch: endpoints are `any` or
//     a single CIDR (no negation, no tables/lists), ports single-valued,
//     and there are no `with` predicates (those depend on end-host
//     responses a switch cannot see);
//   * R carries no `keep state` (reverse admission is flow-specific) and
//     no `log` (covered flows bypass the controller, so a log rule would
//     silently stop producing audit records);
//   * no *earlier* `quick` rule and no *later* rule overlapping R's scope
//     can produce a different outcome.  Earlier non-quick rules are
//     always overridden by R (last match wins) and need no check.
// Overlap tests are conservative: anything unanalyzable (negated
// endpoints, unknown tables) counts as overlapping.

/// Conservative field box of one rule, for pairwise overlap tests.
struct RuleScope {
  bool analyzable = false;
  std::optional<net::IpProto> proto;
  std::vector<net::Cidr> src, dst;  ///< empty = any
  std::uint16_t src_lo = 0, src_hi = 65535;
  std::uint16_t dst_lo = 0, dst_hi = 65535;
};

[[nodiscard]] bool cidrs_overlap(const net::Cidr& a, const net::Cidr& b) {
  return a.prefix_length() <= b.prefix_length() ? a.contains(b.network())
                                                : b.contains(a.network());
}

[[nodiscard]] bool cidr_sets_overlap(const std::vector<net::Cidr>& a,
                                     const std::vector<net::Cidr>& b) {
  if (a.empty() || b.empty()) return true;  // `any` overlaps everything
  for (const net::Cidr& ca : a) {
    for (const net::Cidr& cb : b) {
      if (cidrs_overlap(ca, cb)) return true;
    }
  }
  return false;
}

/// Resolve an endpoint's host spec into CIDRs; false when unanalyzable.
[[nodiscard]] bool resolve_host(const pf::HostSpec& host,
                                const pf::Ruleset& ruleset,
                                std::vector<net::Cidr>& out) {
  struct Visitor {
    const pf::Ruleset& ruleset;
    std::vector<net::Cidr>& out;
    bool operator()(const pf::AnyHost&) const { return true; }
    bool operator()(const pf::CidrHost& h) const {
      out.push_back(h.cidr);
      return true;
    }
    bool operator()(const pf::TableHost& h) const {
      const auto it = ruleset.tables.find(h.table);
      if (it == ruleset.tables.end()) return false;
      out.insert(out.end(), it->second.begin(), it->second.end());
      return true;
    }
    bool operator()(const pf::ListHost& h) const {
      for (const auto& item : h.items) {
        if (const auto* cidr = std::get_if<net::Cidr>(&item)) {
          out.push_back(*cidr);
        } else if (!(*this)(pf::TableHost{std::get<std::string>(item)})) {
          return false;
        }
      }
      return true;
    }
  };
  return std::visit(Visitor{ruleset, out}, host);
}

[[nodiscard]] RuleScope scope_of(const pf::Rule& rule,
                                 const pf::Ruleset& ruleset) {
  RuleScope scope;
  if (rule.from.negated || rule.to.negated) return scope;  // unanalyzable
  if (!resolve_host(rule.from.host, ruleset, scope.src)) return scope;
  if (!resolve_host(rule.to.host, ruleset, scope.dst)) return scope;
  scope.proto = rule.proto;
  if (rule.from.port) {
    scope.src_lo = rule.from.port->low;
    scope.src_hi = rule.from.port->high;
  }
  if (rule.to.port) {
    scope.dst_lo = rule.to.port->low;
    scope.dst_hi = rule.to.port->high;
  }
  scope.analyzable = true;
  return scope;
}

/// Could any single flow match both scopes?  Conservative: true unless a
/// field provably separates them.  `with` predicates only narrow a rule,
/// so they never make this answer wrong.
[[nodiscard]] bool scopes_overlap(const RuleScope& a, const RuleScope& b) {
  if (!a.analyzable || !b.analyzable) return true;
  if (a.proto && b.proto && *a.proto != *b.proto) return false;
  if (a.src_hi < b.src_lo || b.src_hi < a.src_lo) return false;
  if (a.dst_hi < b.dst_lo || b.dst_hi < a.dst_lo) return false;
  if (!cidr_sets_overlap(a.src, b.src)) return false;
  if (!cidr_sets_overlap(a.dst, b.dst)) return false;
  return true;
}

/// Same datapath outcome for every flow, so an "overlapping" rule is
/// harmless: identical action, no reverse-direction state, no logging.
[[nodiscard]] bool outcome_equivalent(const pf::Rule& a, const pf::Rule& b) {
  return a.action == b.action && !a.keep_state && !b.keep_state && !a.log &&
         !b.log;
}

/// One aligned power-of-two block of a port range: all ports with
/// (port & mask) == value.
struct PortBlock {
  std::uint16_t value = 0;
  std::uint16_t mask = 0xffff;
};

/// Greedy decomposition of the contiguous range [lo, hi] into maximal
/// aligned power-of-two blocks — the port analogue of splitting an IP
/// range into CIDRs.  At most 30 blocks for an arbitrary range; common
/// admin ranges (8000:8007, 1024:2047) need one or two.
[[nodiscard]] std::vector<PortBlock> port_range_blocks(std::uint16_t lo,
                                                       std::uint16_t hi) {
  std::vector<PortBlock> out;
  std::uint32_t cur = lo;
  while (cur <= hi) {
    std::uint32_t size = 1;
    while (size < 0x10000u) {
      const std::uint32_t next = size * 2;
      if ((cur & (next - 1)) != 0) break;          // alignment
      if (cur + next - 1 > hi) break;              // fit
      size = next;
    }
    out.push_back(PortBlock{static_cast<std::uint16_t>(cur),
                            static_cast<std::uint16_t>(~(size - 1))});
    cur += size;
  }
  return out;
}

/// Prepare one endpoint's resolved CIDR list for cover generation: a /0
/// member makes the whole side unconstrained (empty list = any), exact
/// duplicates collapse, and CIDRs already contained in a wider member are
/// dropped — { 10.0.0.0/24, 10.0.0.0/25 } needs one entry, not two.
void normalize_cover_cidrs(std::vector<net::Cidr>& cidrs) {
  for (const net::Cidr& cidr : cidrs) {
    if (cidr.prefix_length() == 0) {
      cidrs.clear();
      return;
    }
  }
  std::vector<net::Cidr> kept;
  kept.reserve(cidrs.size());
  for (const net::Cidr& candidate : cidrs) {
    bool redundant = false;
    for (const net::Cidr& other : cidrs) {
      if (other == candidate) continue;
      // Strictly wider `other` absorbs candidate; equal-width duplicates
      // keep only their first occurrence (covered by the == dedupe below).
      if (other.prefix_length() < candidate.prefix_length() &&
          other.contains(candidate.network())) {
        redundant = true;
        break;
      }
    }
    if (!redundant &&
        std::find(kept.begin(), kept.end(), candidate) == kept.end()) {
      kept.push_back(candidate);
    }
  }
  cidrs = std::move(kept);
}

[[nodiscard]] std::vector<openflow::FlowMatch> cover_for(
    std::size_t index, const pf::Ruleset& ruleset,
    const std::vector<RuleScope>& scopes) {
  const pf::Rule& rule = ruleset.rules[index];
  if (rule.keep_state || rule.log || !rule.withs.empty()) return {};
  if (rule.from.negated || rule.to.negated) return {};
  // Scope must fit a small set of FlowMatches: each endpoint must resolve
  // to an explicit CIDR list (any / single CIDR / table / brace list);
  // ports may be single values or contiguous ranges (each range becomes a
  // set of prefix-masked port blocks).  Multi-CIDR hosts contribute one
  // prefix cover per CIDR — the IP analogue of the port-range block
  // decomposition — with the whole cross product capped at
  // kMaxCoverEntries.
  std::vector<net::Cidr> src_cidrs;
  std::vector<net::Cidr> dst_cidrs;
  if (!resolve_host(rule.from.host, ruleset, src_cidrs)) return {};
  if (!resolve_host(rule.to.host, ruleset, dst_cidrs)) return {};
  // A table/list that resolved to nothing matches no flow; an "any"-wide
  // cover for it would capture traffic the rule never decides.  (Such a
  // rule never matches, so no decision carries its cover anyway.)
  const bool src_any = std::holds_alternative<pf::AnyHost>(rule.from.host);
  const bool dst_any = std::holds_alternative<pf::AnyHost>(rule.to.host);
  if ((src_cidrs.empty() && !src_any) || (dst_cidrs.empty() && !dst_any)) {
    return {};
  }
  normalize_cover_cidrs(src_cidrs);
  normalize_cover_cidrs(dst_cidrs);

  const RuleScope& scope = scopes[index];
  for (std::size_t j = 0; j < ruleset.rules.size(); ++j) {
    if (j == index) continue;
    const pf::Rule& other = ruleset.rules[j];
    // Earlier rules only pre-empt R via `quick`; later rules win by
    // matching last.  Non-quick earlier rules are always overridden.
    const bool can_override = j > index || other.quick;
    if (!can_override) continue;
    if (outcome_equivalent(rule, other)) continue;
    if (scopes_overlap(scope, scopes[j])) return {};
  }

  using openflow::Wildcard;
  openflow::FlowMatch base;  // starts all-wildcard
  if (rule.proto) {
    base.wildcards = without(base.wildcards, Wildcard::kProto);
    base.proto = *rule.proto;
  }
  // Each side contributes its CIDR set and its port-block set; the cover
  // is the cross product.  An empty CIDR list / {{0, 0xffff-wildcard}}
  // block stands in for an unconstrained side.
  std::vector<PortBlock> src_blocks{PortBlock{}};
  std::vector<PortBlock> dst_blocks{PortBlock{}};
  bool src_constrained = false;
  bool dst_constrained = false;
  if (rule.from.port && !(rule.from.port->low == 0 &&
                          rule.from.port->high == 65535)) {
    src_blocks = port_range_blocks(rule.from.port->low, rule.from.port->high);
    src_constrained = true;
  }
  if (rule.to.port && !(rule.to.port->low == 0 &&
                        rule.to.port->high == 65535)) {
    dst_blocks = port_range_blocks(rule.to.port->low, rule.to.port->high);
    dst_constrained = true;
  }
  const std::size_t total = std::max<std::size_t>(src_cidrs.size(), 1) *
                            std::max<std::size_t>(dst_cidrs.size(), 1) *
                            src_blocks.size() * dst_blocks.size();
  if (total > AdmissionDecision::kMaxCoverEntries) {
    return {};  // awkward range / wide host list: per-flow installs win
  }

  // Iterate "unconstrained" as a single null CIDR so the loop shape stays
  // one cross product.
  std::vector<const net::Cidr*> src_iter{nullptr};
  std::vector<const net::Cidr*> dst_iter{nullptr};
  if (!src_cidrs.empty()) {
    src_iter.assign(src_cidrs.size(), nullptr);
    for (std::size_t i = 0; i < src_cidrs.size(); ++i) src_iter[i] = &src_cidrs[i];
  }
  if (!dst_cidrs.empty()) {
    dst_iter.assign(dst_cidrs.size(), nullptr);
    for (std::size_t i = 0; i < dst_cidrs.size(); ++i) dst_iter[i] = &dst_cidrs[i];
  }

  std::vector<openflow::FlowMatch> covers;
  covers.reserve(total);
  for (const net::Cidr* src_cidr : src_iter) {
    for (const net::Cidr* dst_cidr : dst_iter) {
      openflow::FlowMatch ip_base = base;
      if (src_cidr != nullptr) {
        ip_base.wildcards = without(ip_base.wildcards, Wildcard::kSrcIp);
        ip_base.src_ip = src_cidr->network();
        ip_base.src_ip_prefix = src_cidr->prefix_length();
      }
      if (dst_cidr != nullptr) {
        ip_base.wildcards = without(ip_base.wildcards, Wildcard::kDstIp);
        ip_base.dst_ip = dst_cidr->network();
        ip_base.dst_ip_prefix = dst_cidr->prefix_length();
      }
      for (const PortBlock& src : src_blocks) {
        for (const PortBlock& dst : dst_blocks) {
          openflow::FlowMatch match = ip_base;
          if (src_constrained) {
            match.wildcards = without(match.wildcards, Wildcard::kSrcPort);
            match.src_port = src.value;
            match.src_port_mask = src.mask;
          }
          if (dst_constrained) {
            match.wildcards = without(match.wildcards, Wildcard::kDstPort);
            match.dst_port = dst.value;
            match.dst_port_mask = dst.mask;
          }
          covers.push_back(match);
        }
      }
    }
  }
  return covers;
}

[[nodiscard]] std::vector<std::vector<openflow::FlowMatch>> compute_covers(
    const pf::Ruleset& ruleset) {
  // Resolve every rule's field box once (table resolution copies CIDR
  // vectors); the pairwise overlap loop below then stays cheap.
  std::vector<RuleScope> scopes;
  scopes.reserve(ruleset.rules.size());
  for (const pf::Rule& rule : ruleset.rules) {
    scopes.push_back(scope_of(rule, ruleset));
  }
  std::vector<std::vector<openflow::FlowMatch>> covers;
  covers.reserve(ruleset.rules.size());
  for (std::size_t i = 0; i < ruleset.rules.size(); ++i) {
    covers.push_back(cover_for(i, ruleset, scopes));
  }
  return covers;
}

}  // namespace

// ---------------------------------------------------------------- records

void ControllerStats::accumulate(const ControllerStats& other) noexcept {
  packet_ins += other.packet_ins;
  flows_seen += other.flows_seen;
  flows_allowed += other.flows_allowed;
  flows_blocked += other.flows_blocked;
  queries_sent += other.queries_sent;
  responses_received += other.responses_received;
  query_timeouts += other.query_timeouts;
  entries_installed += other.entries_installed;
  buffered_packets_released += other.buffered_packets_released;
  ident_transit_forwarded += other.ident_transit_forwarded;
  responses_augmented += other.responses_augmented;
  queries_proxied += other.queries_proxied;
  flows_expired += other.flows_expired;
  flows_logged += other.flows_logged;
  decision_cache_hits += other.decision_cache_hits;
  query_retries += other.query_retries;
  duplicate_responses += other.duplicate_responses;
  degraded_verdicts += other.degraded_verdicts;
}

bool audit_record_before(const DecisionRecord& a,
                         const DecisionRecord& b) noexcept {
  const auto key = [](const DecisionRecord& r) {
    return std::tie(r.time, r.flow.src_ip, r.flow.dst_ip, r.flow.proto,
                    r.flow.src_port, r.flow.dst_port, r.allowed, r.rule,
                    r.src_user, r.dst_user, r.src_app);
  };
  return key(a) < key(b);
}

// ---------------------------------------------------------------- engines

std::vector<AdmissionDecision> DecisionEngine::decide_many(
    const std::vector<const AdmissionContext*>& batch) {
  std::vector<AdmissionDecision> out;
  out.reserve(batch.size());
  for (const AdmissionContext* ctx : batch) out.push_back(decide(*ctx));
  return out;
}

PolicyDecisionEngine::PolicyDecisionEngine(pf::Ruleset ruleset)
    : PolicyDecisionEngine(std::move(ruleset),
                           pf::FunctionRegistry::with_builtins()) {}

PolicyDecisionEngine::PolicyDecisionEngine(pf::Ruleset ruleset,
                                           pf::FunctionRegistry registry,
                                           bool honor_keep_state)
    : engine_(std::make_unique<pf::PolicyEngine>(std::move(ruleset),
                                                 std::move(registry))),
      honor_keep_state_(honor_keep_state),
      covers_(compute_covers(engine_->ruleset())) {
  // Public keys embedded in the policy (dict values, e.g. @pubkeys[...])
  // are long-lived — register each with the verifier now so its comb table
  // is built once, here, instead of lazily on the flow-setup hot path.
  // Registration costs ~1000 EC ops and ~69 KB per key, so only policies
  // that can actually verify signatures (a verify() predicate, or
  // allowed() whose delegated rules may call verify) pay it; anything
  // else leaves keys to the lazy second-sighting cache in schnorr.cpp.
  const auto& verifier = engine_->registry().verifier();
  bool verifies = false;
  for (const pf::Rule& rule : engine_->ruleset().rules) {
    for (const pf::FuncCall& call : rule.withs) {
      if (call.name == "verify" || call.name == "allowed") {
        verifies = true;
        break;
      }
    }
    if (verifies) break;
  }
  if (verifier && verifies) {
    for (const auto& [dict_name, entries] : engine_->ruleset().dicts) {
      for (const auto& [key_name, value] : entries) {
        if (const auto key = crypto::PublicKey::from_hex(value)) {
          verifier->register_key(*key);
        }
      }
    }
  }
}

crypto::SchnorrVerifier* PolicyDecisionEngine::verifier() const noexcept {
  return engine_->registry().verifier().get();
}

void PolicyDecisionEngine::set_key_table_budget(std::size_t bytes) {
  if (auto* v = verifier()) {
    crypto::KeyTierConfig config;
    config.table_budget_bytes = bytes;
    v->set_tier_config(config);
  }
}

pf::FlowContext PolicyDecisionEngine::make_flow_context(
    const AdmissionContext& ctx) const {
  pf::FlowContext flow_ctx;
  flow_ctx.flow = ctx.flow;
  if (ctx.src_response) flow_ctx.src = proto::ResponseDict(*ctx.src_response);
  if (ctx.dst_response) flow_ctx.dst = proto::ResponseDict(*ctx.dst_response);
  if (!ctx.buffered.empty()) {
    flow_ctx.openflow =
        ctx.buffered.front().packet.ten_tuple(ctx.buffered.front().in_port);
  }
  return flow_ctx;
}

AdmissionDecision PolicyDecisionEngine::to_decision(
    const pf::Verdict& verdict) const {
  AdmissionDecision decision;
  decision.allowed = verdict.allowed();
  decision.keep_state = honor_keep_state_ && verdict.keep_state;
  decision.logged = verdict.log;
  decision.rule = verdict.rule ? pf::to_string(*verdict.rule) : "default";
  if (verdict.rule != nullptr) {
    // Attach the precomputed aggregation covers of the matched rule.
    const auto& rules = engine_->ruleset().rules;
    if (!rules.empty() && verdict.rule >= rules.data() &&
        verdict.rule < rules.data() + rules.size()) {
      decision.covers = covers_[static_cast<std::size_t>(verdict.rule - rules.data())];
    }
  }
  return decision;
}

AdmissionDecision PolicyDecisionEngine::decide(const AdmissionContext& ctx) {
  pf::Verdict verdict;
  try {
    verdict = engine_->evaluate(make_flow_context(ctx));
  } catch (const PolicyError& e) {
    // Administrator configuration error: fail closed.
    IDXX_LOG(kError, "controller")
        << "policy error, blocking flow: " << e.what();
    verdict.action = pf::RuleAction::kBlock;
    verdict.rule = nullptr;
    verdict.keep_state = false;
    verdict.log = false;
  }
  return to_decision(verdict);
}

std::vector<AdmissionDecision> PolicyDecisionEngine::decide_many(
    const std::vector<const AdmissionContext*>& batch) {
  // Repeat packet-ins for the same undecided flow land in one batch when a
  // shared deadline fires; evaluate each distinct 5-tuple once.
  std::unordered_map<net::FiveTuple, std::size_t> memo;
  std::vector<const AdmissionContext*> unique;
  std::vector<std::size_t> slot_of;  // batch position -> unique index
  unique.reserve(batch.size());
  slot_of.reserve(batch.size());
  for (const AdmissionContext* ctx : batch) {
    const auto [it, inserted] = memo.try_emplace(ctx->flow, unique.size());
    if (inserted) unique.push_back(ctx);
    slot_of.push_back(it->second);
  }

  std::vector<AdmissionDecision> decisions;
  decisions.reserve(unique.size());
  bool batched = false;
  if (batch_eval_) {
    // One evaluate_batch over the distinct flows: static prefilters probed
    // per 5-tuple, flow-invariant `with` predicates hoisted across the
    // batch (DESIGN.md §11).  Verdicts are bit-identical to the serial
    // loop below.
    std::vector<pf::FlowContext> flow_ctxs;
    flow_ctxs.reserve(unique.size());
    for (const AdmissionContext* ctx : unique) {
      flow_ctxs.push_back(make_flow_context(*ctx));
    }
    try {
      const std::vector<pf::Verdict> verdicts = engine_->evaluate_batch(
          std::span<const pf::FlowContext>(flow_ctxs));
      for (const pf::Verdict& verdict : verdicts) {
        decisions.push_back(to_decision(verdict));
      }
      batched = true;
    } catch (const PolicyError& e) {
      // Administrator configuration error somewhere in the batch.  Fall
      // back to the per-flow path so each flow fails closed on its own
      // merits instead of one bad rule blocking the whole batch.  (The
      // engine's EngineStats keep the aborted batch's partial work plus
      // the fallback's — they are work counters, see eval.hpp.)
      IDXX_LOG(kError, "controller")
          << "policy error in batched evaluation, re-deciding per flow: "
          << e.what();
      decisions.clear();
    }
  }
  if (!batched) {
    for (const AdmissionContext* ctx : unique) {
      decisions.push_back(decide(*ctx));
    }
  }

  std::vector<AdmissionDecision> out;
  out.reserve(batch.size());
  for (const std::size_t slot : slot_of) out.push_back(decisions[slot]);
  return out;
}

bool AclDecisionEngine::evaluate_acl(const net::FiveTuple& flow) const {
  for (const AclRule& rule : acl_) {
    if (!rule.src.contains(flow.src_ip)) continue;
    if (!rule.dst.contains(flow.dst_ip)) continue;
    if (rule.proto && *rule.proto != flow.proto) continue;
    if (flow.dst_port < rule.dst_port_low || flow.dst_port > rule.dst_port_high)
      continue;
    return rule.allow;
  }
  return default_allow_;
}

AdmissionDecision AclDecisionEngine::decide(const AdmissionContext& ctx) {
  AdmissionDecision decision;
  // Stateful: the reverse of an allowed flow is allowed.
  if (allowed_flows_.contains(ctx.flow.reversed())) {
    decision.allowed = true;
    decision.rule = "state";
    return decision;
  }
  decision.allowed = evaluate_acl(ctx.flow);
  decision.rule = decision.allowed ? "acl pass" : "acl block";
  if (decision.allowed) allowed_flows_.insert(ctx.flow);
  return decision;
}

// ---------------------------------------------------------------- caches

std::optional<AdmissionDecision> TtlDecisionCache::lookup(
    const net::FiveTuple& flow, sim::SimTime now) {
  const auto it = entries_.find(flow);
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  // expires == 0 marks a never-expiring entry (ttl = 0): the old
  // `now + 0` stamp expired everything instantly, turning the cache into
  // a silent bypass that still counted insertions.
  if (it->second.expires > 0 && now >= it->second.expires) {
    entries_.erase(it);
    ++stats_.expirations;
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  return it->second.decision;
}

void TtlDecisionCache::store(const net::FiveTuple& flow,
                             const AdmissionDecision& decision,
                             sim::SimTime now) {
  entries_[flow] = Entry{decision, ttl_ > 0 ? now + ttl_ : 0};
  ++stats_.insertions;
}

std::size_t TtlDecisionCache::invalidate_if(
    const std::function<bool(const net::FiveTuple&)>& pred) {
  const std::size_t removed = std::erase_if(
      entries_, [&pred](const auto& entry) { return pred(entry.first); });
  stats_.invalidations += removed;
  return removed;
}

void TtlDecisionCache::clear() {
  stats_.invalidations += entries_.size();
  entries_.clear();
}

LruDecisionCache::LruDecisionCache(std::size_t capacity, sim::SimTime ttl)
    : capacity_(capacity == 0 ? 1 : capacity), ttl_(ttl) {}

std::optional<AdmissionDecision> LruDecisionCache::lookup(
    const net::FiveTuple& flow, sim::SimTime now) {
  const auto it = entries_.find(flow);
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  if (it->second->expires > 0 && now >= it->second->expires) {
    order_.erase(it->second);
    entries_.erase(it);
    ++stats_.expirations;
    ++stats_.misses;
    return std::nullopt;
  }
  order_.splice(order_.begin(), order_, it->second);  // refresh recency
  ++stats_.hits;
  return it->second->decision;
}

void LruDecisionCache::store(const net::FiveTuple& flow,
                             const AdmissionDecision& decision,
                             sim::SimTime now) {
  const sim::SimTime expires = ttl_ > 0 ? now + ttl_ : 0;
  if (const auto it = entries_.find(flow); it != entries_.end()) {
    it->second->decision = decision;
    it->second->expires = expires;
    order_.splice(order_.begin(), order_, it->second);
    ++stats_.insertions;
    return;
  }
  if (entries_.size() >= capacity_) {
    entries_.erase(order_.back().flow);
    order_.pop_back();
    ++stats_.evictions;
  }
  order_.push_front(Entry{flow, decision, expires});
  entries_[flow] = order_.begin();
  ++stats_.insertions;
}

std::size_t LruDecisionCache::invalidate_if(
    const std::function<bool(const net::FiveTuple&)>& pred) {
  std::size_t removed = 0;
  for (auto it = order_.begin(); it != order_.end();) {
    if (pred(it->flow)) {
      entries_.erase(it->flow);
      it = order_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  stats_.invalidations += removed;
  return removed;
}

void LruDecisionCache::clear() {
  stats_.invalidations += entries_.size();
  entries_.clear();
  order_.clear();
}

// ---------------------------------------------------------------- install

std::size_t PathInstallStrategy::install_along_path(
    AdmissionEnv& env, const AdmissionContext& ctx,
    const openflow::FlowMatch* fixed_match) {
  const HostInfo* src = env.find_host(ctx.flow.src_ip);
  const HostInfo* dst = env.find_host(ctx.flow.dst_ip);
  if (src == nullptr || dst == nullptr) return 0;
  // Seeded ECMP (DESIGN.md §12): the flow's deterministic pick from the
  // equal-cost path set.  Entries — including aggregate covers — are
  // installed along this one path end to end, so any flow they capture is
  // delivered over it even if its own hash would have chosen a sibling
  // path (covered flows are pinned to the cover's install path; verdict
  // soundness is untouched because path choice never affects the policy).
  const auto hops =
      env.topology().path_for_flow(src->node, dst->node, ctx.flow);
  if (!hops) return 0;

  const ControllerConfig& config = env.config();

  // Per-flow template 10-tuple: MACs from the buffered packet when
  // available so the installed entries exactly match the flow's packets.
  net::TenTuple tuple;
  if (fixed_match == nullptr) {
    if (!ctx.buffered.empty()) {
      tuple = ctx.buffered.front().packet.ten_tuple(0);
    } else {
      tuple.src_mac = src->mac;
      tuple.dst_mac = net::MacAddress{0xffffffffffffULL};
    }
    tuple.src_ip = ctx.flow.src_ip;
    tuple.dst_ip = ctx.flow.dst_ip;
    tuple.proto = ctx.flow.proto;
    tuple.src_port = ctx.flow.src_port;
    tuple.dst_port = ctx.flow.dst_port;
  }

  std::uint64_t cookie = 0;
  std::size_t installed = 0;
  bool first_domain_hop = true;
  for (const openflow::Hop& hop : *hops) {
    if (!env.domain().contains(hop.switch_id)) continue;
    if (!config.install_full_path && !first_domain_hop) break;
    first_domain_hop = false;
    openflow::FlowMatch match;
    if (fixed_match != nullptr) {
      match = *fixed_match;
    } else {
      tuple.in_port = hop.in_port;
      match = openflow::FlowMatch::exact(tuple);
      if (hop.in_port == 0) match.wildcards = openflow::Wildcard::kInPort;
    }
    openflow::Switch& sw = env.topology().switch_at(hop.switch_id);
    if (fixed_match != nullptr &&
        sw.table().find(match, config.flow_priority,
                        env.simulator().now()) != nullptr) {
      continue;  // the rule is already cached here: ≤1 entry per cover
    }
    if (cookie == 0) cookie = env.allocate_cookie(ctx.flow);
    openflow::FlowEntry entry;
    entry.match = match;
    entry.priority = config.flow_priority;
    entry.action = openflow::OutputAction{{hop.out_port}};
    entry.idle_timeout = config.flow_idle_timeout;
    entry.hard_timeout = config.flow_hard_timeout;
    entry.cookie = cookie;
    sw.install_flow(std::move(entry));
    ++installed;
  }
  return installed;
}

std::size_t PathInstallStrategy::install_allow(AdmissionEnv& env,
                                               const AdmissionContext& ctx,
                                               const AdmissionDecision&) {
  return install_along_path(env, ctx, nullptr);
}

std::size_t PathInstallStrategy::install_drop_at_ingress(
    AdmissionEnv& env, const AdmissionContext& ctx,
    const AdmissionDecision& decision, const openflow::FlowMatch& match,
    bool dedupe) {
  if (!env.config().install_drop_entries) return 0;
  if (ctx.buffered.empty()) return 0;
  const openflow::PacketIn& msg = ctx.buffered.front();
  if (!env.domain().contains(msg.switch_id)) return 0;
  openflow::Switch& sw = env.topology().switch_at(msg.switch_id);
  if (dedupe && sw.table().find(match, env.config().flow_priority,
                                env.simulator().now()) != nullptr) {
    return 0;
  }
  openflow::FlowEntry entry;
  entry.match = match;
  entry.priority = env.config().flow_priority;
  entry.action = openflow::DropAction{};
  if (decision.degraded) {
    // Fail-closed degraded cover (DESIGN.md §14): short hard TTL, no idle
    // refresh, so the flow re-enters admission soon after the cover ages
    // out even if the re-admission probe budget is spent.
    entry.idle_timeout = 0;
    entry.hard_timeout = env.config().degraded_cover_ttl;
  } else {
    entry.idle_timeout = env.config().flow_idle_timeout;
    entry.hard_timeout = env.config().flow_hard_timeout;
  }
  entry.cookie = env.allocate_cookie(ctx.flow);
  sw.install_flow(std::move(entry));
  return 1;
}

std::size_t PathInstallStrategy::install_drop(AdmissionEnv& env,
                                              const AdmissionContext& ctx,
                                              const AdmissionDecision& decision) {
  if (ctx.buffered.empty()) return 0;
  const openflow::PacketIn& msg = ctx.buffered.front();
  return install_drop_at_ingress(
      env, ctx, decision,
      openflow::FlowMatch::exact(msg.packet.ten_tuple(msg.in_port)),
      /*dedupe=*/false);
}

std::size_t AggregatingInstallStrategy::install_allow(
    AdmissionEnv& env, const AdmissionContext& ctx,
    const AdmissionDecision& decision) {
  if (decision.covers.empty()) {
    return PathInstallStrategy::install_allow(env, ctx, decision);
  }
  // Narrow each cover to this flow's destination host: the output action
  // is destination-determined, so the installed entries must not capture
  // traffic for other destinations.  Everything else (source addresses,
  // source ports, port blocks, in_port, MACs) stays aggregated.
  std::size_t installed = 0;
  for (const openflow::FlowMatch& cover : decision.covers) {
    openflow::FlowMatch match = cover;
    match.wildcards = without(match.wildcards, openflow::Wildcard::kDstIp);
    match.dst_ip = ctx.flow.dst_ip;
    match.dst_ip_prefix = 32;
    installed += install_along_path(env, ctx, &match);
  }
  return installed;
}

std::size_t AggregatingInstallStrategy::install_drop(
    AdmissionEnv& env, const AdmissionContext& ctx,
    const AdmissionDecision& decision) {
  if (decision.covers.empty()) {
    return PathInstallStrategy::install_drop(env, ctx, decision);
  }
  // Drops have no output port, so the rule's full scope caches as-is.
  std::size_t installed = 0;
  for (const openflow::FlowMatch& cover : decision.covers) {
    installed +=
        install_drop_at_ingress(env, ctx, decision, cover, /*dedupe=*/true);
  }
  return installed;
}

bool AggregatingInstallStrategy::is_aggregate_entry(
    const openflow::FlowEntry& entry) noexcept {
  using openflow::Wildcard;
  const Wildcard beyond_in_port =
      without(entry.match.wildcards, Wildcard::kInPort);
  if (beyond_in_port != Wildcard::kNone) return true;
  return entry.match.src_ip_prefix < 32 || entry.match.dst_ip_prefix < 32 ||
         entry.match.src_port_mask != 0xffff ||
         entry.match.dst_port_mask != 0xffff;
}

// ---------------------------------------------------------------- pipeline

AdmissionPipeline& AdmissionPipeline::finish(const ControllerConfig& config) {
  if (!planner) planner = std::make_unique<EndpointQueryPlanner>();
  if (!collector) collector = std::make_unique<ResponseCollector>();
  if (!installer) {
    if (config.aggregate_installs) {
      installer = std::make_unique<AggregatingInstallStrategy>();
    } else {
      installer = std::make_unique<PathInstallStrategy>();
    }
  }
  // Caching activates when either knob is set: a capacity alone means a
  // pure LRU bound (entries never age out), a TTL alone an unbounded
  // time-based cache.
  if (!cache) {
    if (config.decision_cache_capacity > 0) {
      cache = std::make_unique<LruDecisionCache>(config.decision_cache_capacity,
                                                 config.decision_cache_ttl);
    } else if (config.decision_cache_ttl > 0) {
      cache = std::make_unique<TtlDecisionCache>(config.decision_cache_ttl);
    }
  }
  return *this;
}

// The factories only pick stages; defaulting the rest (and cache creation
// from the config) happens in AdmissionController's constructor, which
// calls finish() with the controller's actual config.

AdmissionPipeline AdmissionPipeline::identxx(pf::Ruleset ruleset,
                                             pf::FunctionRegistry registry) {
  AdmissionPipeline pipeline;
  pipeline.engine = std::make_unique<PolicyDecisionEngine>(std::move(ruleset),
                                                           std::move(registry));
  return pipeline;
}

AdmissionPipeline AdmissionPipeline::ethane(pf::Ruleset ruleset) {
  AdmissionPipeline pipeline;
  pipeline.planner = std::make_unique<NoQueryPlanner>();
  // Seed-baseline parity: Ethane takes only pass/block from the verdict;
  // `keep state` never installs reverse entries (the reverse direction
  // re-decides on its own packet-in).
  pipeline.engine = std::make_unique<PolicyDecisionEngine>(
      std::move(ruleset), pf::FunctionRegistry::with_builtins(),
      /*honor_keep_state=*/false);
  return pipeline;
}

AdmissionPipeline AdmissionPipeline::vanilla(bool default_allow) {
  AdmissionPipeline pipeline;
  pipeline.planner = std::make_unique<NoQueryPlanner>();
  pipeline.engine = std::make_unique<AclDecisionEngine>(default_allow);
  return pipeline;
}

AdmissionPipeline AdmissionPipeline::distributed() {
  AdmissionPipeline pipeline;
  pipeline.planner = std::make_unique<NoQueryPlanner>();
  pipeline.engine = std::make_unique<AllowAllDecisionEngine>();
  return pipeline;
}

}  // namespace identxx::ctrl
