#include "controller/admission.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace identxx::ctrl {

// ---------------------------------------------------------------- planner

QueryPlan EndpointQueryPlanner::plan(const net::FiveTuple& flow,
                                     AdmissionEnv& env) {
  // Figure 1 step 3: query both ends of the flow, each with the other
  // endpoint spoofed as the query's source (§3.2).
  QueryPlan plan;
  plan.targets.push_back(QueryTarget{flow.src_ip, flow.dst_ip, true});
  if (env.config().query_both_ends) {
    plan.targets.push_back(QueryTarget{flow.dst_ip, flow.src_ip, false});
  }
  return plan;
}

// ---------------------------------------------------------------- collector

ResponseCollector::BeginResult ResponseCollector::begin(
    const net::FiveTuple& flow, const openflow::PacketIn& msg,
    sim::SimTime now) {
  const auto [it, inserted] = pending_.try_emplace(flow);
  AdmissionContext& ctx = it->second;
  ctx.buffered.push_back(msg);
  if (inserted) {
    ctx.flow = flow;
    ctx.first_seen = now;
  }
  return BeginResult{&ctx, inserted};
}

AdmissionContext* ResponseCollector::find(const net::FiveTuple& flow) {
  const auto it = pending_.find(flow);
  return it == pending_.end() ? nullptr : &it->second;
}

AdmissionContext* ResponseCollector::accept_response(
    net::Ipv4Address responder, net::Ipv4Address peer,
    const proto::Response& response) {
  // Responder was the flow source?
  const net::FiveTuple as_src{responder, peer, response.proto,
                              response.src_port, response.dst_port};
  if (const auto it = pending_.find(as_src); it != pending_.end()) {
    it->second.src_response = response;
    return &it->second;
  }
  // Responder was the flow destination?
  const net::FiveTuple as_dst{peer, responder, response.proto,
                              response.src_port, response.dst_port};
  if (const auto it = pending_.find(as_dst); it != pending_.end()) {
    it->second.dst_response = response;
    return &it->second;
  }
  return nullptr;
}

void ResponseCollector::set_proxy(net::Ipv4Address ip, proto::Section section) {
  proxies_[ip] = std::move(section);
}

bool ResponseCollector::fill_proxy(AdmissionContext& ctx, bool source_side) {
  std::optional<proto::Response>& slot =
      source_side ? ctx.src_response : ctx.dst_response;
  if (slot) return false;
  const auto proxy =
      proxies_.find(source_side ? ctx.flow.src_ip : ctx.flow.dst_ip);
  if (proxy == proxies_.end()) return false;
  proto::Response response;
  response.proto = ctx.flow.proto;
  response.src_port = ctx.flow.src_port;
  response.dst_port = ctx.flow.dst_port;
  response.append_section(proxy->second);
  slot = std::move(response);
  return true;
}

std::size_t ResponseCollector::fill_proxies_at_begin(AdmissionContext& ctx,
                                                     bool query_both_ends) {
  // Hosts we cannot query may have proxy answers configured (§4
  // incremental benefit).
  std::size_t filled = 0;
  if (!ctx.awaiting_src && fill_proxy(ctx, true)) ++filled;
  if (!ctx.awaiting_dst && query_both_ends && fill_proxy(ctx, false)) ++filled;
  return filled;
}

std::size_t ResponseCollector::fill_proxies_at_decide(AdmissionContext& ctx) {
  std::size_t filled = 0;
  if (fill_proxy(ctx, true)) ++filled;
  if (fill_proxy(ctx, false)) ++filled;
  return filled;
}

void ResponseCollector::arm_deadline(AdmissionContext& ctx,
                                     sim::SimTime deadline) {
  ctx.deadline = deadline;
  ctx.generation = ++generation_counter_;
  deadlines_.push_back(Deadline{deadline, ctx.generation, ctx.flow});
}

std::vector<AdmissionContext*> ResponseCollector::expired(sim::SimTime now) {
  std::vector<AdmissionContext*> out;
  while (!deadlines_.empty() && deadlines_.front().at <= now) {
    const Deadline deadline = deadlines_.front();
    deadlines_.pop_front();
    AdmissionContext* ctx = find(deadline.flow);
    // The generation (globally unique per arm) skips flows decided in the
    // meantime and re-created pending entries for the same 5-tuple — even
    // ones re-armed at the very same timestamp, which a deadline-only
    // check would hand out twice.
    if (ctx == nullptr || ctx->generation != deadline.generation) continue;
    out.push_back(ctx);
  }
  return out;
}

void ResponseCollector::erase(const net::FiveTuple& flow) {
  pending_.erase(flow);
}

// ---------------------------------------------------------------- engines

std::vector<AdmissionDecision> DecisionEngine::decide_many(
    const std::vector<const AdmissionContext*>& batch) {
  std::vector<AdmissionDecision> out;
  out.reserve(batch.size());
  for (const AdmissionContext* ctx : batch) out.push_back(decide(*ctx));
  return out;
}

PolicyDecisionEngine::PolicyDecisionEngine(pf::Ruleset ruleset)
    : PolicyDecisionEngine(std::move(ruleset),
                           pf::FunctionRegistry::with_builtins()) {}

PolicyDecisionEngine::PolicyDecisionEngine(pf::Ruleset ruleset,
                                           pf::FunctionRegistry registry,
                                           bool honor_keep_state)
    : engine_(std::make_unique<pf::PolicyEngine>(std::move(ruleset),
                                                 std::move(registry))),
      honor_keep_state_(honor_keep_state) {}

AdmissionDecision PolicyDecisionEngine::decide(const AdmissionContext& ctx) {
  pf::FlowContext flow_ctx;
  flow_ctx.flow = ctx.flow;
  if (ctx.src_response) flow_ctx.src = proto::ResponseDict(*ctx.src_response);
  if (ctx.dst_response) flow_ctx.dst = proto::ResponseDict(*ctx.dst_response);
  if (!ctx.buffered.empty()) {
    flow_ctx.openflow =
        ctx.buffered.front().packet.ten_tuple(ctx.buffered.front().in_port);
  }

  pf::Verdict verdict;
  try {
    verdict = engine_->evaluate(flow_ctx);
  } catch (const PolicyError& e) {
    // Administrator configuration error: fail closed.
    IDXX_LOG(kError, "controller")
        << "policy error, blocking flow: " << e.what();
    verdict.action = pf::RuleAction::kBlock;
    verdict.rule = nullptr;
    verdict.keep_state = false;
    verdict.log = false;
  }

  AdmissionDecision decision;
  decision.allowed = verdict.allowed();
  decision.keep_state = honor_keep_state_ && verdict.keep_state;
  decision.logged = verdict.log;
  decision.rule = verdict.rule ? pf::to_string(*verdict.rule) : "default";
  return decision;
}

std::vector<AdmissionDecision> PolicyDecisionEngine::decide_many(
    const std::vector<const AdmissionContext*>& batch) {
  // Repeat packet-ins for the same undecided flow land in one batch when a
  // shared deadline fires; evaluate each distinct 5-tuple once.
  std::unordered_map<net::FiveTuple, std::size_t> memo;
  std::vector<AdmissionDecision> out;
  out.reserve(batch.size());
  for (const AdmissionContext* ctx : batch) {
    const auto [it, inserted] = memo.try_emplace(ctx->flow, out.size());
    if (inserted) {
      out.push_back(decide(*ctx));
    } else {
      out.push_back(out[it->second]);
    }
  }
  return out;
}

bool AclDecisionEngine::evaluate_acl(const net::FiveTuple& flow) const {
  for (const AclRule& rule : acl_) {
    if (!rule.src.contains(flow.src_ip)) continue;
    if (!rule.dst.contains(flow.dst_ip)) continue;
    if (rule.proto && *rule.proto != flow.proto) continue;
    if (flow.dst_port < rule.dst_port_low || flow.dst_port > rule.dst_port_high)
      continue;
    return rule.allow;
  }
  return default_allow_;
}

AdmissionDecision AclDecisionEngine::decide(const AdmissionContext& ctx) {
  AdmissionDecision decision;
  // Stateful: the reverse of an allowed flow is allowed.
  if (allowed_flows_.contains(ctx.flow.reversed())) {
    decision.allowed = true;
    decision.rule = "state";
    return decision;
  }
  decision.allowed = evaluate_acl(ctx.flow);
  decision.rule = decision.allowed ? "acl pass" : "acl block";
  if (decision.allowed) allowed_flows_.insert(ctx.flow);
  return decision;
}

// ---------------------------------------------------------------- caches

std::optional<AdmissionDecision> TtlDecisionCache::lookup(
    const net::FiveTuple& flow, sim::SimTime now) {
  const auto it = entries_.find(flow);
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  if (now >= it->second.expires) {
    entries_.erase(it);
    ++stats_.expirations;
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  return it->second.decision;
}

void TtlDecisionCache::store(const net::FiveTuple& flow,
                             const AdmissionDecision& decision,
                             sim::SimTime now) {
  entries_[flow] = Entry{decision, now + ttl_};
  ++stats_.insertions;
}

std::size_t TtlDecisionCache::invalidate_if(
    const std::function<bool(const net::FiveTuple&)>& pred) {
  const std::size_t removed = std::erase_if(
      entries_, [&pred](const auto& entry) { return pred(entry.first); });
  stats_.invalidations += removed;
  return removed;
}

void TtlDecisionCache::clear() {
  stats_.invalidations += entries_.size();
  entries_.clear();
}

LruDecisionCache::LruDecisionCache(std::size_t capacity, sim::SimTime ttl)
    : capacity_(capacity == 0 ? 1 : capacity), ttl_(ttl) {}

std::optional<AdmissionDecision> LruDecisionCache::lookup(
    const net::FiveTuple& flow, sim::SimTime now) {
  const auto it = entries_.find(flow);
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  if (it->second->expires > 0 && now >= it->second->expires) {
    order_.erase(it->second);
    entries_.erase(it);
    ++stats_.expirations;
    ++stats_.misses;
    return std::nullopt;
  }
  order_.splice(order_.begin(), order_, it->second);  // refresh recency
  ++stats_.hits;
  return it->second->decision;
}

void LruDecisionCache::store(const net::FiveTuple& flow,
                             const AdmissionDecision& decision,
                             sim::SimTime now) {
  const sim::SimTime expires = ttl_ > 0 ? now + ttl_ : 0;
  if (const auto it = entries_.find(flow); it != entries_.end()) {
    it->second->decision = decision;
    it->second->expires = expires;
    order_.splice(order_.begin(), order_, it->second);
    ++stats_.insertions;
    return;
  }
  if (entries_.size() >= capacity_) {
    entries_.erase(order_.back().flow);
    order_.pop_back();
    ++stats_.evictions;
  }
  order_.push_front(Entry{flow, decision, expires});
  entries_[flow] = order_.begin();
  ++stats_.insertions;
}

std::size_t LruDecisionCache::invalidate_if(
    const std::function<bool(const net::FiveTuple&)>& pred) {
  std::size_t removed = 0;
  for (auto it = order_.begin(); it != order_.end();) {
    if (pred(it->flow)) {
      entries_.erase(it->flow);
      it = order_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  stats_.invalidations += removed;
  return removed;
}

void LruDecisionCache::clear() {
  stats_.invalidations += entries_.size();
  entries_.clear();
  order_.clear();
}

// ---------------------------------------------------------------- install

std::size_t PathInstallStrategy::install_allow(AdmissionEnv& env,
                                               const AdmissionContext& ctx) {
  const HostInfo* src = env.find_host(ctx.flow.src_ip);
  const HostInfo* dst = env.find_host(ctx.flow.dst_ip);
  if (src == nullptr || dst == nullptr) return 0;
  const auto hops = env.topology().path(src->node, dst->node);
  if (!hops) return 0;

  const ControllerConfig& config = env.config();

  // Template 10-tuple: MACs from the buffered packet when available so the
  // installed entries exactly match the flow's packets.
  net::TenTuple tuple;
  if (!ctx.buffered.empty()) {
    tuple = ctx.buffered.front().packet.ten_tuple(0);
  } else {
    tuple.src_mac = src->mac;
    tuple.dst_mac = net::MacAddress{0xffffffffffffULL};
  }
  tuple.src_ip = ctx.flow.src_ip;
  tuple.dst_ip = ctx.flow.dst_ip;
  tuple.proto = ctx.flow.proto;
  tuple.src_port = ctx.flow.src_port;
  tuple.dst_port = ctx.flow.dst_port;

  const std::uint64_t cookie = env.allocate_cookie(ctx.flow);
  std::size_t installed = 0;
  bool first_domain_hop = true;
  for (const openflow::Hop& hop : *hops) {
    if (!env.domain().contains(hop.switch_id)) continue;
    if (!config.install_full_path && !first_domain_hop) break;
    tuple.in_port = hop.in_port;
    openflow::FlowEntry entry;
    entry.match = openflow::FlowMatch::exact(tuple);
    if (hop.in_port == 0) {
      entry.match.wildcards = openflow::Wildcard::kInPort;
    }
    entry.priority = config.flow_priority;
    entry.action = openflow::OutputAction{{hop.out_port}};
    entry.idle_timeout = config.flow_idle_timeout;
    entry.hard_timeout = config.flow_hard_timeout;
    entry.cookie = cookie;
    env.topology().switch_at(hop.switch_id).install_flow(std::move(entry));
    ++installed;
    first_domain_hop = false;
  }
  return installed;
}

std::size_t PathInstallStrategy::install_drop(AdmissionEnv& env,
                                              const AdmissionContext& ctx) {
  if (!env.config().install_drop_entries) return 0;
  if (ctx.buffered.empty()) return 0;
  const openflow::PacketIn& msg = ctx.buffered.front();
  if (!env.domain().contains(msg.switch_id)) return 0;
  openflow::FlowEntry entry;
  entry.match = openflow::FlowMatch::exact(msg.packet.ten_tuple(msg.in_port));
  entry.priority = env.config().flow_priority;
  entry.action = openflow::DropAction{};
  entry.idle_timeout = env.config().flow_idle_timeout;
  entry.hard_timeout = env.config().flow_hard_timeout;
  entry.cookie = env.allocate_cookie(ctx.flow);
  env.topology().switch_at(msg.switch_id).install_flow(std::move(entry));
  return 1;
}

// ---------------------------------------------------------------- pipeline

AdmissionPipeline& AdmissionPipeline::finish(const ControllerConfig& config) {
  if (!planner) planner = std::make_unique<EndpointQueryPlanner>();
  if (!collector) collector = std::make_unique<ResponseCollector>();
  if (!installer) installer = std::make_unique<PathInstallStrategy>();
  // Caching activates when either knob is set: a capacity alone means a
  // pure LRU bound (entries never age out), a TTL alone an unbounded
  // time-based cache.
  if (!cache) {
    if (config.decision_cache_capacity > 0) {
      cache = std::make_unique<LruDecisionCache>(config.decision_cache_capacity,
                                                 config.decision_cache_ttl);
    } else if (config.decision_cache_ttl > 0) {
      cache = std::make_unique<TtlDecisionCache>(config.decision_cache_ttl);
    }
  }
  return *this;
}

// The factories only pick stages; defaulting the rest (and cache creation
// from the config) happens in AdmissionController's constructor, which
// calls finish() with the controller's actual config.

AdmissionPipeline AdmissionPipeline::identxx(pf::Ruleset ruleset,
                                             pf::FunctionRegistry registry) {
  AdmissionPipeline pipeline;
  pipeline.engine = std::make_unique<PolicyDecisionEngine>(std::move(ruleset),
                                                           std::move(registry));
  return pipeline;
}

AdmissionPipeline AdmissionPipeline::ethane(pf::Ruleset ruleset) {
  AdmissionPipeline pipeline;
  pipeline.planner = std::make_unique<NoQueryPlanner>();
  // Seed-baseline parity: Ethane takes only pass/block from the verdict;
  // `keep state` never installs reverse entries (the reverse direction
  // re-decides on its own packet-in).
  pipeline.engine = std::make_unique<PolicyDecisionEngine>(
      std::move(ruleset), pf::FunctionRegistry::with_builtins(),
      /*honor_keep_state=*/false);
  return pipeline;
}

AdmissionPipeline AdmissionPipeline::vanilla(bool default_allow) {
  AdmissionPipeline pipeline;
  pipeline.planner = std::make_unique<NoQueryPlanner>();
  pipeline.engine = std::make_unique<AclDecisionEngine>(default_allow);
  return pipeline;
}

AdmissionPipeline AdmissionPipeline::distributed() {
  AdmissionPipeline pipeline;
  pipeline.planner = std::make_unique<NoQueryPlanner>();
  pipeline.engine = std::make_unique<AllowAllDecisionEngine>();
  return pipeline;
}

}  // namespace identxx::ctrl
