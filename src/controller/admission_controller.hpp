#pragma once

// AdmissionController: the one flow-admission skeleton.
//
// Drives an AdmissionPipeline (admission.hpp) from the OpenFlow control
// channel: packet-in -> decision cache -> query plan -> collect responses
// (with deadline) -> DecisionEngine -> InstallStrategy -> release buffered
// packets, with every step mirrored to the attached AdmissionObservers.
//
// The ident++ controller and all three baseline controllers are this class
// with different pipelines (and, for ident++, the §2/§3.4 wire-level
// interception layered on top in IdentxxController).  The old duplicated
// adopt/register/install skeleton in baselines.cpp is gone.

#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "controller/admission.hpp"

namespace identxx::ctrl {

class AdmissionController : public openflow::ControlPlane, public AdmissionEnv {
 public:
  /// `topology` must outlive the controller.  `pipeline.engine` is
  /// required; unset stages are defaulted via AdmissionPipeline::finish.
  AdmissionController(openflow::Topology* topology, AdmissionPipeline pipeline,
                      ControllerConfig config = {});
  ~AdmissionController() override = default;

  // ---- domain wiring -------------------------------------------------------

  /// Take ownership of a switch's control channel: sets this controller on
  /// it, then lets the subclass install boot rules (on_switch_adopted).
  void adopt_switch(sim::NodeId switch_id,
                    sim::SimTime control_latency = 100 * sim::kMicrosecond);

  /// Add a switch to this controller's install domain WITHOUT taking its
  /// control channel or installing boot rules — sharded admission domains
  /// share every switch while a ShardedAdmissionController front-end owns
  /// the channels and dispatches messages by flow shard.
  void join_domain(sim::NodeId switch_id);

  /// Teach the controller where a host lives (IP -> node/attachment/MAC).
  void register_host(net::Ipv4Address ip, sim::NodeId node,
                     net::MacAddress mac);

  // ---- management ----------------------------------------------------------

  /// Swap the decision engine (hot policy reload).  Does not flush
  /// installed entries — call revoke_all() for that — but does clear the
  /// decision cache: stale verdicts must not outlive the policy that
  /// produced them.
  void replace_engine(std::unique_ptr<DecisionEngine> engine);

  /// Remove every flow entry this controller installed (revocation, §1).
  /// Boot rules (e.g. ident++ intercepts) stay.  Also invalidates the
  /// whole decision cache.  Returns entries removed.
  std::size_t revoke_all();

  /// Remove installed entries whose flow matches `pred`, and invalidate
  /// matching cached decisions — a revoked flow must not be silently
  /// re-admitted from cache.
  std::size_t revoke_if(const std::function<bool(const net::FiveTuple&)>& pred);

  /// §5.1: a compromised controller disables all protection.
  void set_compromised(bool compromised) noexcept { compromised_ = compromised; }

  /// Attach an additional observer (tracing, metrics, tests).
  void add_observer(std::unique_ptr<AdmissionObserver> observer);

  /// Record a control-channel packet-in handled through a sharded
  /// front-end dispatch path that bypasses on_packet_in (direct response
  /// consumption) — keeps per-domain packet_in accounting equal to a
  /// standalone controller's.
  void observe_packet_in(const openflow::PacketIn& msg) {
    notify([&](AdmissionObserver& o) { o.on_packet_in(msg); });
  }

  // ---- accounting ----------------------------------------------------------

  /// Datapath usage of a flow this controller admitted, read back from the
  /// switches' flow tables (OpenFlow counters) — accounting/audit support.
  struct FlowUsage {
    net::FiveTuple flow;
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
  };

  /// Aggregate per-flow counters across the domain's switches.  Entries
  /// installed on several switches along a path count each packet once
  /// (the maximum over switches is reported).
  [[nodiscard]] std::vector<FlowUsage> flow_usage() const;

  /// Cookies with live flow-table entries somewhere in the domain.  The
  /// map shrinks as entries expire/evict (flow-removed notifications) and
  /// synchronously on revoke_all/revoke_if/replace_engine — the seed kept
  /// every cookie forever, an unbounded leak under sustained traffic.
  [[nodiscard]] std::size_t installed_flow_count() const noexcept {
    return installed_flows_.size();
  }

  // ---- ControlPlane --------------------------------------------------------

  void on_packet_in(const openflow::PacketIn& msg) override;
  void on_flow_removed(const openflow::FlowRemovedMsg& msg) override;

  // ---- observation ---------------------------------------------------------

  [[nodiscard]] const ControllerStats& stats() const noexcept {
    return stats_observer_->stats();
  }
  /// Bounded audit trail (ring buffer of config.audit_log_capacity).
  [[nodiscard]] const std::deque<DecisionRecord>& audit_log() const noexcept {
    return audit_observer_->records();
  }
  /// Audit records discarded to stay within the retention bound.
  [[nodiscard]] std::uint64_t audit_dropped() const noexcept {
    return audit_observer_->dropped();
  }

  // ---- pipeline access (tests, tuning) -------------------------------------

  [[nodiscard]] QueryPlanner& planner() noexcept { return *pipeline_.planner; }
  [[nodiscard]] ResponseCollector& collector() noexcept {
    return *pipeline_.collector;
  }
  [[nodiscard]] DecisionEngine& decision_engine() noexcept {
    return *pipeline_.engine;
  }
  [[nodiscard]] const DecisionEngine& decision_engine() const noexcept {
    return *pipeline_.engine;
  }
  [[nodiscard]] DecisionCache* decision_cache() noexcept {
    return pipeline_.cache.get();
  }
  [[nodiscard]] InstallStrategy& installer() noexcept {
    return *pipeline_.installer;
  }

  // ---- AdmissionEnv --------------------------------------------------------

  [[nodiscard]] openflow::Topology& topology() noexcept override {
    return *topology_;
  }
  [[nodiscard]] const std::unordered_set<sim::NodeId>& domain()
      const noexcept override {
    return domain_;
  }
  [[nodiscard]] const HostInfo* find_host(net::Ipv4Address ip) const override;
  [[nodiscard]] const ControllerConfig& config() const noexcept override {
    return config_;
  }
  [[nodiscard]] sim::Simulator& simulator() noexcept override {
    return topology_->simulator();
  }
  std::uint64_t allocate_cookie(const net::FiveTuple& flow) override;

 protected:
  /// Install boot rules on a freshly adopted switch (ident++ intercepts).
  virtual void on_switch_adopted(openflow::Switch& sw) { (void)sw; }

  /// First shot at a packet-in (after the compromised check).  Return true
  /// when fully handled — ident++ claims its TCP-783 control traffic here.
  virtual bool handle_special_packet(const openflow::PacketIn& msg,
                                     const net::FiveTuple& flow) {
    (void)msg;
    (void)flow;
    return false;
  }

  /// Deliver one planned query; returns false when the target cannot be
  /// reached (unknown host, no daemon transport).  Baselines never plan
  /// queries, so the default never fires.
  virtual bool send_query(const net::FiveTuple& flow,
                          const QueryTarget& target) {
    (void)flow;
    (void)target;
    return false;
  }

  /// Admission for an ordinary (non-special) packet-in.
  void handle_new_flow(const openflow::PacketIn& msg,
                       const net::FiveTuple& flow);

  /// Decide `ctx` now if both sides are ready.
  void maybe_decide(AdmissionContext& ctx);

  /// Run the decision stages for `ctx` and retire it.  With a shard
  /// decision lane configured, evaluation is dispatched to that lane and
  /// the verdict commits back on the global lane at the same virtual
  /// instant (commit_decision).
  void decide_one(AdmissionContext& ctx, bool timed_out);

  template <typename Fn>
  void notify(Fn&& fn) {
    for (const auto& observer : observers_) fn(*observer);
  }

 private:
  /// Did this controller allocate `cookie`?  Namespacing (the top 16 bits
  /// carry config.cookie_namespace) lets sharded domains share switch
  /// tables yet revoke only their own entries.
  [[nodiscard]] bool owns_cookie(std::uint64_t cookie) const noexcept;
  /// Commit a shard-lane verdict on the global lane.  If a control-plane
  /// change (revocation / policy swap) happened since dispatch, the stale
  /// verdict is discarded and the flow re-decides under the current
  /// engine — never a stale cover or cache entry.
  void commit_decision(AdmissionContext& ctx, AdmissionDecision decision,
                       std::uint64_t dispatch_epoch);
  /// Push engine-level config knobs (batch_policy_eval) into the current
  /// DecisionEngine; called at construction and after replace_engine.
  void apply_engine_config();
  /// Does any domain switch still hold an entry with this cookie?
  [[nodiscard]] bool cookie_live(std::uint64_t cookie) const;
  /// Drop cookie-map entries whose last flow-table entry is gone.
  void prune_installed_flows();
  void replay_cached(const openflow::PacketIn& msg, const net::FiveTuple& flow,
                     const AdmissionDecision& cached);
  /// Batch-decide every pending flow whose deadline has passed.
  void sweep_expired();
  // -- robustness (DESIGN.md §14) -------------------------------------------
  /// Re-issue `ctx`'s unanswered queries with exponential backoff + seeded
  /// jitter.  Returns true when a retry went out (the context keeps
  /// waiting); false when the retry budget is spent or nothing re-sendable
  /// remains (the caller proceeds to the timeout decision).
  bool retry_queries(AdmissionContext& ctx);
  /// Order-independent jitter for `ctx`'s current retry: a pure hash of
  /// (flow, attempt, config.retry_jitter_seed), so sharding and worker
  /// count never change the draw.
  [[nodiscard]] sim::SimTime retry_jitter_for(
      const AdmissionContext& ctx) const;
  /// Remember `ctx`'s first packet-in and schedule a re-admission probe
  /// (bounded by config.max_readmission_probes).
  void schedule_readmission_probe(AdmissionContext& ctx);
  /// Re-enter admission for a degraded flow: lift its fail-closed cover
  /// and replay the remembered packet-in through handle_new_flow, so the
  /// re-decision flows through the normal dispatch/commit/control-epoch
  /// machinery.
  void probe_readmission(const net::FiveTuple& flow);
  /// Remove this controller's installed entries for exactly `flow`
  /// (targeted, no control-epoch bump).
  std::size_t remove_flow_entries(const net::FiveTuple& flow);
  void finalize(AdmissionContext& ctx, const AdmissionDecision& decision);
  /// Turn a verdict into flow-table state and release/drop the buffered
  /// packets — shared by fresh decisions (finalize) and cache replays.
  void apply_decision(AdmissionContext& ctx, const AdmissionDecision& decision);
  void release_buffered(AdmissionContext& ctx, bool allowed);

  openflow::Topology* topology_;
  AdmissionPipeline pipeline_;
  ControllerConfig config_;
  std::unordered_set<sim::NodeId> domain_;
  std::unordered_map<net::Ipv4Address, HostInfo> hosts_;
  std::unordered_map<std::uint64_t, net::FiveTuple> installed_flows_;
  /// Degraded flows awaiting re-admission (DESIGN.md §14): the first
  /// buffered packet-in is kept so a probe can re-enter admission once the
  /// daemon may have recovered.  Entries die on a full-information
  /// decision; a flow whose probe budget is spent keeps its entry so later
  /// degraded verdicts do not restart the probe train.
  struct DegradedFlow {
    openflow::PacketIn first_msg;
    std::uint32_t probes_scheduled = 0;
  };
  std::unordered_map<net::FiveTuple, DegradedFlow> degraded_;
  std::vector<std::unique_ptr<AdmissionObserver>> observers_;
  StatsObserver* stats_observer_ = nullptr;   // owned via observers_
  AuditLogObserver* audit_observer_ = nullptr;  // owned via observers_
  std::uint64_t next_cookie_ = 1;
  /// Bumped by revoke_all / revoke_if / replace_engine; shard-lane
  /// decisions dispatched under an older epoch are discarded at commit
  /// and re-decided (commit_decision).
  std::uint64_t control_epoch_ = 0;
  sim::SimTime last_scheduled_sweep_ = -1;  ///< dedupes per-tick sweeps
  bool compromised_ = false;
};

}  // namespace identxx::ctrl
