#pragma once

// The ident++ controller (§3.4) — the paper's primary contribution.
//
// Sits on the OpenFlow control channel of the switches in its domain.  For
// every new flow (packet-in):
//   1. queries the source and destination ident++ daemons (Figure 1 step 3),
//      spoofing the flow's other endpoint as the query's source address
//      (§3.2) and injecting the query at the queried host's attachment
//      switch via packet-out;
//   2. collects the responses — which arrive as ordinary network packets and
//      are punted back by pre-installed ident++ intercept rules (TCP 783);
//   3. builds the @src/@dst dictionaries and evaluates the PF+=2 policy
//      assembled from its .control files;
//   4. on pass, installs exact-match entries along the flow's path (Figure 1
//      step 4) and releases the buffered packet(s); on block, optionally
//      installs a drop entry at the ingress switch.
//
// It also implements the §2 interception behaviours: answering queries on
// behalf of end-hosts (without forwarding them), and augmenting transiting
// responses with an additional section — the mechanism behind the §4
// "network collaboration" scenario.  Compromise and revocation hooks
// support the §5 security experiments.

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "identxx/dict.hpp"
#include "identxx/wire.hpp"
#include "openflow/switch.hpp"
#include "openflow/topology.hpp"
#include "pf/eval.hpp"

namespace identxx::ctrl {

/// Tuning knobs; defaults mirror the paper's implied design.  The ablation
/// flags correspond to DESIGN.md §6.
struct ControllerConfig {
  std::string name = "controller";
  /// How long to wait for daemon responses before deciding with whatever
  /// information arrived.
  sim::SimTime query_timeout = 50 * sim::kMillisecond;
  /// Timeouts stamped on installed flow entries (0 = none).
  sim::SimTime flow_idle_timeout = 60 * sim::kSecond;
  sim::SimTime flow_hard_timeout = 0;
  /// Install entries on every switch along the path (Figure 1 step 4)
  /// versus only at the ingress switch (each later switch re-asks).
  bool install_full_path = true;
  /// Cache negative decisions as drop entries at the ingress switch.
  bool install_drop_entries = true;
  /// Query both ends (§2) or only the source.
  bool query_both_ends = true;
  /// Controller-level decision cache TTL (0 = disabled).  With it enabled,
  /// repeat packet-ins for an already-decided flow (e.g. from later
  /// switches when install_full_path is off, or after an idle-timeout
  /// race) are answered without re-querying the daemons.
  sim::SimTime decision_cache_ttl = 0;
  /// Priority for installed per-flow entries; ident++ intercept rules are
  /// installed at kInterceptPriority and must stay on top.
  std::uint16_t flow_priority = 100;
  static constexpr std::uint16_t kInterceptPriority = 1000;
};

/// One line of the audit log ("log and audit the delegates' actions", §1).
struct DecisionRecord {
  sim::SimTime time = 0;
  net::FiveTuple flow;
  bool allowed = false;
  bool timed_out = false;        ///< decided without both responses
  bool logged = false;           ///< matched rule carried PF's `log` modifier
  std::string rule;              ///< to_string of the matched rule, or "default"
  std::string src_user;          ///< @src[userID] if provided
  std::string src_app;           ///< @src[name] if provided
  std::string dst_user;          ///< @dst[userID] if provided
  sim::SimTime setup_latency = 0;  ///< first packet-in -> decision
};

struct ControllerStats {
  std::uint64_t packet_ins = 0;
  std::uint64_t flows_seen = 0;
  std::uint64_t flows_allowed = 0;
  std::uint64_t flows_blocked = 0;
  std::uint64_t queries_sent = 0;
  std::uint64_t responses_received = 0;
  std::uint64_t query_timeouts = 0;
  std::uint64_t entries_installed = 0;
  std::uint64_t buffered_packets_released = 0;
  std::uint64_t ident_transit_forwarded = 0;
  std::uint64_t responses_augmented = 0;
  std::uint64_t queries_proxied = 0;
  std::uint64_t flows_expired = 0;
  std::uint64_t flows_logged = 0;      ///< decisions from `log` rules
  std::uint64_t decision_cache_hits = 0;
};

class IdentxxController : public openflow::ControlPlane {
 public:
  /// `topology` must outlive the controller.
  IdentxxController(openflow::Topology* topology, pf::Ruleset ruleset,
                    ControllerConfig config = {});
  IdentxxController(openflow::Topology* topology, pf::Ruleset ruleset,
                    pf::FunctionRegistry registry, ControllerConfig config);

  // ---- domain wiring -------------------------------------------------------

  /// Take ownership of a switch's control channel: sets this controller on
  /// it and installs the ident++ intercept rules (TCP 783 both directions
  /// punt to controller).
  void adopt_switch(sim::NodeId switch_id,
                    sim::SimTime control_latency = 100 * sim::kMicrosecond);

  /// Teach the controller where a host lives (IP -> node/attachment/MAC).
  void register_host(net::Ipv4Address ip, sim::NodeId node,
                     net::MacAddress mac);

  // ---- §2 interception hooks ----------------------------------------------

  /// Answer queries for `ip` on the host's behalf (host without a daemon —
  /// "incremental benefit", §4).  The pairs are returned as a single
  /// section.  Applies on query timeout as a proxy answer.
  void set_proxy_response(net::Ipv4Address ip, proto::Section section);

  /// Augment transiting responses (network collaboration, §4): called once
  /// per response as it crosses this controller's domain; a returned
  /// section is appended after an empty line (§2).
  using ResponseAugmenter = std::function<std::optional<proto::Section>(
      const proto::Response&, const net::FiveTuple& flow)>;
  void set_response_augmenter(ResponseAugmenter augmenter) {
    augmenter_ = std::move(augmenter);
  }

  /// Intercept transiting queries: return a Response to answer on the
  /// queried host's behalf (the query is then *not* forwarded, §3.4).
  using QueryInterceptor = std::function<std::optional<proto::Response>(
      const proto::Query&, net::Ipv4Address target_ip)>;
  void set_query_interceptor(QueryInterceptor interceptor) {
    query_interceptor_ = std::move(interceptor);
  }

  // ---- management ----------------------------------------------------------

  /// Replace the policy (hot reload of .control files).  Does not flush
  /// installed entries; call revoke_all() for that.
  void set_policy(pf::Ruleset ruleset);

  /// Remove every flow entry this controller installed (revocation, §1).
  /// Intercept rules stay.  Returns entries removed.
  std::size_t revoke_all();

  /// Remove installed entries whose flow matches `pred`.
  std::size_t revoke_if(
      const std::function<bool(const net::FiveTuple&)>& pred);

  /// §5.1: a compromised controller disables all protection.
  void set_compromised(bool compromised) noexcept { compromised_ = compromised; }

  /// Datapath usage of a flow this controller admitted, read back from the
  /// switches' flow tables (OpenFlow counters) — accounting/audit support.
  struct FlowUsage {
    net::FiveTuple flow;
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
  };

  /// Aggregate per-flow counters across the domain's switches.  Entries
  /// installed on several switches along a path count each packet once
  /// (the maximum over switches is reported).
  [[nodiscard]] std::vector<FlowUsage> flow_usage() const;

  // ---- ControlPlane ----------------------------------------------------------

  void on_packet_in(const openflow::PacketIn& msg) override;
  void on_flow_removed(const openflow::FlowRemovedMsg& msg) override;

  // ---- observation ------------------------------------------------------------

  [[nodiscard]] const ControllerStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::vector<DecisionRecord>& audit_log() const noexcept {
    return audit_log_;
  }
  [[nodiscard]] const pf::PolicyEngine& engine() const noexcept { return *engine_; }
  [[nodiscard]] const ControllerConfig& config() const noexcept { return config_; }

 private:
  struct PendingFlow {
    net::FiveTuple flow;
    std::vector<openflow::PacketIn> buffered;
    std::optional<proto::Response> src_response;
    std::optional<proto::Response> dst_response;
    sim::SimTime first_seen = 0;
    std::uint64_t generation = 0;  ///< guards the timeout callback
    bool awaiting_src = false;
    bool awaiting_dst = false;
  };

  [[nodiscard]] sim::Simulator& simulator() noexcept {
    return topology_->simulator();
  }

  void handle_new_flow(const openflow::PacketIn& msg,
                       const net::FiveTuple& flow);
  void handle_ident_packet(const openflow::PacketIn& msg,
                           const net::FiveTuple& flow);
  void handle_ident_response(const openflow::PacketIn& msg,
                             const proto::Response& response);
  void handle_transit_query(const openflow::PacketIn& msg);
  void forward_one_hop(const openflow::PacketIn& msg,
                       net::Ipv4Address toward_ip);

  /// Send an ident++ query to the daemon at `target_ip` about `flow`.
  /// Returns false when the host is unknown or unreachable.
  bool send_query(const net::FiveTuple& flow, net::Ipv4Address target_ip,
                  net::Ipv4Address spoof_src_ip);

  void maybe_decide(PendingFlow& pending);
  void decide(PendingFlow& pending, bool timed_out);
  void install_allow_path(const PendingFlow& pending);
  void install_drop(const PendingFlow& pending);
  void release_buffered(PendingFlow& pending, bool allowed);
  void install_intercept_rules(openflow::Switch& sw);

  openflow::Topology* topology_;
  std::unique_ptr<pf::PolicyEngine> engine_;
  ControllerConfig config_;
  std::unordered_set<sim::NodeId> domain_;
  struct HostInfo {
    sim::NodeId node = sim::kInvalidNode;
    net::MacAddress mac;
  };
  std::unordered_map<net::Ipv4Address, HostInfo> hosts_;
  std::unordered_map<net::Ipv4Address, proto::Section> proxy_responses_;
  std::unordered_map<net::FiveTuple, PendingFlow> pending_;
  /// Responses this controller recently augmented, so a response punted at
  /// every hop through the domain is only augmented once.  Time-bounded:
  /// an entry only suppresses re-augmentation within kAugmentWindow (a
  /// response crosses the domain in far less), so reused 5-tuples (port
  /// reuse on long-running networks) augment correctly again.
  static constexpr sim::SimTime kAugmentWindow = 1 * sim::kSecond;
  std::unordered_map<std::string, sim::SimTime> augmented_;
  struct CachedDecision {
    bool allowed = false;
    bool keep_state = false;
    sim::SimTime expires = 0;
  };
  std::unordered_map<net::FiveTuple, CachedDecision> decision_cache_;
  ResponseAugmenter augmenter_;
  QueryInterceptor query_interceptor_;
  std::vector<DecisionRecord> audit_log_;
  std::unordered_map<std::uint64_t, net::FiveTuple> installed_flows_;
  ControllerStats stats_;
  std::uint64_t next_cookie_ = 1;
  std::uint16_t next_query_port_ = 20000;
  std::uint64_t generation_counter_ = 0;
  bool compromised_ = false;
};

}  // namespace identxx::ctrl
