#pragma once

// The ident++ controller (§3.4) — the paper's primary contribution.
//
// Sits on the OpenFlow control channel of the switches in its domain.  For
// every new flow (packet-in):
//   1. queries the source and destination ident++ daemons (Figure 1 step 3),
//      spoofing the flow's other endpoint as the query's source address
//      (§3.2) and injecting the query at the queried host's attachment
//      switch via packet-out;
//   2. collects the responses — which arrive as ordinary network packets and
//      are punted back by pre-installed ident++ intercept rules (TCP 783);
//   3. builds the @src/@dst dictionaries and evaluates the PF+=2 policy
//      assembled from its .control files;
//   4. on pass, installs exact-match entries along the flow's path (Figure 1
//      step 4) and releases the buffered packet(s); on block, optionally
//      installs a drop entry at the ingress switch.
//
// It also implements the §2 interception behaviours: answering queries on
// behalf of end-hosts (without forwarding them), and augmenting transiting
// responses with an additional section — the mechanism behind the §4
// "network collaboration" scenario.  Compromise and revocation hooks
// support the §5 security experiments.
//
// Structurally this is AdmissionPipeline::identxx() driven by the shared
// AdmissionController skeleton (admission_controller.hpp), plus the
// ident++ wire layer: query emission, response interception, transit
// handling and response augmentation.  The admission loop itself —
// cache, planning, collection, decision, installation — lives in the
// pipeline stages (admission.hpp), where the baselines share it.

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>

#include "controller/admission_controller.hpp"
#include "util/rng.hpp"

namespace identxx::ctrl {

class IdentxxController : public AdmissionController {
 public:
  /// `topology` must outlive the controller.
  IdentxxController(openflow::Topology* topology, pf::Ruleset ruleset,
                    ControllerConfig config = {});
  IdentxxController(openflow::Topology* topology, pf::Ruleset ruleset,
                    pf::FunctionRegistry registry, ControllerConfig config);

  // ---- §2 interception hooks ----------------------------------------------

  /// Answer queries for `ip` on the host's behalf (host without a daemon —
  /// "incremental benefit", §4).  The pairs are returned as a single
  /// section.  Applies on query timeout as a proxy answer.
  void set_proxy_response(net::Ipv4Address ip, proto::Section section) {
    collector().set_proxy(ip, std::move(section));
  }

  /// Augment transiting responses (network collaboration, §4): called once
  /// per response as it crosses this controller's domain; a returned
  /// section is appended after an empty line (§2).
  using ResponseAugmenter = std::function<std::optional<proto::Section>(
      const proto::Response&, const net::FiveTuple& flow)>;
  void set_response_augmenter(ResponseAugmenter augmenter) {
    augmenter_ = std::move(augmenter);
  }

  /// Intercept transiting queries: return a Response to answer on the
  /// queried host's behalf (the query is then *not* forwarded, §3.4).
  using QueryInterceptor = std::function<std::optional<proto::Response>(
      const proto::Query&, net::Ipv4Address target_ip)>;
  void set_query_interceptor(QueryInterceptor interceptor) {
    query_interceptor_ = std::move(interceptor);
  }

  // ---- management ----------------------------------------------------------

  /// Replace the policy (hot reload of .control files).  Does not flush
  /// installed entries — call revoke_all() for that — but does invalidate
  /// cached decisions.
  void set_policy(pf::Ruleset ruleset);

  /// Draw query ephemeral source ports from a deterministic per-controller
  /// stream instead of the sequential counter.  Sharded scenario runs give
  /// every domain its own seed-derived stream (util::SplitMix64), so the
  /// ports one domain draws never depend on a sibling's draw order — a
  /// precondition for shard-count-invariant replay (DESIGN.md §10).
  void seed_query_ports(std::uint64_t seed) noexcept {
    query_port_rng_.emplace(seed);
  }

  /// The TCP-783 intercept rules every ident++ deployment boots a switch
  /// with (both directions punt to the controller).  Shared with the
  /// sharded front-end, which owns switch channels itself.
  static void install_intercept_rules(openflow::Switch& sw);

  // ---- sharded front-end hooks ---------------------------------------------
  // A ShardedAdmissionController parses responses once and probes candidate
  // domains directly (a response names the queried flow's ports in flow
  // orientation, so either endpoint may be the flow's source — the two
  // orientations can hash to different shards).

  /// Consume `response` if it matches one of this controller's pending
  /// flows: counts it, fills the context and decides.  Returns false —
  /// with nothing counted — when no pending flow matches.
  bool try_consume_response(const openflow::PacketIn& msg,
                            const proto::Response& response);

  /// A response transiting the domain (matched nowhere): optionally
  /// augment it (§4 network collaboration) and forward it one hop.
  void handle_transit_response(const openflow::PacketIn& msg,
                               const proto::Response& response);

  // ---- observation ---------------------------------------------------------

  /// Throws when the decision engine was replaced with a non-PF engine.
  [[nodiscard]] const pf::PolicyEngine& engine() const;

 protected:
  // ---- AdmissionController hooks -------------------------------------------

  /// Install the ident++ intercept rules (TCP 783 both directions punt to
  /// controller) on every adopted switch.
  void on_switch_adopted(openflow::Switch& sw) override;

  /// Claims ident++ control traffic (TCP 783) before flow admission.
  bool handle_special_packet(const openflow::PacketIn& msg,
                             const net::FiveTuple& flow) override;

  /// Send an ident++ query to the daemon at `target.target` about `flow`,
  /// spoofing `target.spoof_src` (§3.2).  Returns false when the host is
  /// unknown or unreachable.
  bool send_query(const net::FiveTuple& flow,
                  const QueryTarget& target) override;

 private:
  void handle_ident_packet(const openflow::PacketIn& msg,
                           const net::FiveTuple& flow);
  void handle_ident_response(const openflow::PacketIn& msg,
                             const proto::Response& response);
  void handle_transit_query(const openflow::PacketIn& msg);
  void forward_one_hop(const openflow::PacketIn& msg,
                       net::Ipv4Address toward_ip);

  /// Responses this controller recently augmented, so a response punted at
  /// every hop through the domain is only augmented once.  Time-bounded:
  /// an entry only suppresses re-augmentation within kAugmentWindow (a
  /// response crosses the domain in far less), so reused 5-tuples (port
  /// reuse on long-running networks) augment correctly again.
  static constexpr sim::SimTime kAugmentWindow = 1 * sim::kSecond;
  std::unordered_map<std::string, sim::SimTime> augmented_;
  /// Responses recently consumed into a pending flow, keyed by the
  /// flow-oriented tuple plus the carrying packet's ports: an identical
  /// copy arriving with no pending context within kAugmentWindow is a
  /// channel duplicate and is deduped, not transit-forwarded
  /// (DESIGN.md §14).  Responses about the same flow on a different
  /// ephemeral port (a host querying its peer directly, §4) still
  /// transit.
  std::unordered_map<std::string, sim::SimTime> recent_responses_;
  ResponseAugmenter augmenter_;
  QueryInterceptor query_interceptor_;
  std::uint16_t next_query_port_ = 20000;
  std::optional<util::SplitMix64> query_port_rng_;  ///< seeded stream, if any
};

}  // namespace identxx::ctrl
