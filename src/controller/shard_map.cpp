#include "controller/shard_map.hpp"

namespace identxx::ctrl {

namespace {

/// SplitMix64 finalizer: cheap, well-mixed 64 -> 64 bits.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint32_t ShardMap::shard_of(const net::FiveTuple& flow) const noexcept {
  // Canonical endpoint ordering: the (ip, port) pair with the smaller
  // address (port breaks ties) goes first, so both directions hash alike.
  std::uint64_t a = (static_cast<std::uint64_t>(flow.src_ip.value()) << 16) |
                    flow.src_port;
  std::uint64_t b = (static_cast<std::uint64_t>(flow.dst_ip.value()) << 16) |
                    flow.dst_port;
  net::Ipv4Address lo_ip = flow.src_ip;
  net::Ipv4Address hi_ip = flow.dst_ip;
  if (b < a) {
    std::swap(a, b);
    std::swap(lo_ip, hi_ip);
  }
  if (!pins_.empty()) {
    if (const auto it = pins_.find(lo_ip); it != pins_.end()) {
      return it->second % shard_count_;
    }
    if (const auto it = pins_.find(hi_ip); it != pins_.end()) {
      return it->second % shard_count_;
    }
  }
  const std::uint64_t h =
      mix64(mix64(a) ^ mix64(b ^ 0x5851f42d4c957f2dULL) ^
            static_cast<std::uint64_t>(flow.proto));
  return static_cast<std::uint32_t>(h % shard_count_);
}

void ShardMap::pin_endpoint(net::Ipv4Address ip, std::uint32_t shard) {
  pins_[ip] = shard % shard_count_;
}

void ShardMap::bind_switch(sim::NodeId switch_id, std::uint32_t shard) {
  switch_shards_[switch_id] = shard % shard_count_;
}

std::uint32_t ShardMap::switch_shard(sim::NodeId switch_id) const noexcept {
  const auto it = switch_shards_.find(switch_id);
  return it == switch_shards_.end() ? 0 : it->second;
}

}  // namespace identxx::ctrl
