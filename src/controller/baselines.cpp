#include "controller/baselines.hpp"

#include "util/error.hpp"

namespace identxx::ctrl {

namespace {

[[nodiscard]] ControllerConfig baseline_config(const char* name) {
  ControllerConfig config;
  config.name = name;
  return config;
}

}  // namespace

// ---------------------------------------------------------------- vanilla

VanillaFirewall::VanillaFirewall(openflow::Topology* topology,
                                 bool default_allow)
    : AdmissionController(topology, AdmissionPipeline::vanilla(default_allow),
                          baseline_config("vanilla")) {}

const AclDecisionEngine& VanillaFirewall::acl_engine() const {
  const auto* acl = dynamic_cast<const AclDecisionEngine*>(&decision_engine());
  if (acl == nullptr) {
    throw Error("VanillaFirewall: decision engine is not an "
                "AclDecisionEngine (replaced via replace_engine?)");
  }
  return *acl;
}

AclDecisionEngine& VanillaFirewall::acl_engine() {
  return const_cast<AclDecisionEngine&>(
      static_cast<const VanillaFirewall*>(this)->acl_engine());
}

void VanillaFirewall::add_rule(AclRule rule) { acl_engine().add_rule(rule); }

bool VanillaFirewall::evaluate_acl(const net::FiveTuple& flow) const {
  return acl_engine().evaluate_acl(flow);
}

// ---------------------------------------------------------------- ethane

EthaneController::EthaneController(openflow::Topology* topology,
                                   pf::Ruleset ruleset)
    : AdmissionController(topology,
                          AdmissionPipeline::ethane(std::move(ruleset)),
                          baseline_config("ethane")) {}

const pf::PolicyEngine& EthaneController::engine() const {
  const auto* policy =
      dynamic_cast<const PolicyDecisionEngine*>(&decision_engine());
  if (policy == nullptr) {
    throw Error("EthaneController::engine(): decision engine is not a "
                "PolicyDecisionEngine (replaced via replace_engine?)");
  }
  return policy->policy_engine();
}

// ---------------------------------------------------------------- distributed

DistributedFirewallController::DistributedFirewallController(
    openflow::Topology* topology)
    : AdmissionController(topology, AdmissionPipeline::distributed(),
                          baseline_config("distributed")) {}

// ---------------------------------------------------------------- learning

void LearningSwitchController::on_packet_in(const openflow::PacketIn& msg) {
  ++stats_.packet_ins;
  openflow::Switch& sw = topology_->switch_at(msg.switch_id);

  // Learn the source MAC's location.
  const Key src_key{msg.switch_id, msg.packet.eth.src.value()};
  const auto [it, inserted] = mac_table_.try_emplace(src_key, msg.in_port);
  if (inserted) {
    ++stats_.macs_learned;
  } else {
    it->second = msg.in_port;  // host moved
  }

  // Forward by destination MAC if known; flood otherwise.
  const Key dst_key{msg.switch_id, msg.packet.eth.dst.value()};
  const auto dst_it = mac_table_.find(dst_key);
  if (dst_it == mac_table_.end()) {
    ++stats_.floods;
    sw.packet_out(msg.packet, openflow::FloodAction{}, msg.in_port);
    return;
  }
  // Install a destination-MAC entry so later packets skip the controller.
  openflow::FlowEntry entry;
  entry.match.wildcards = openflow::without(openflow::Wildcard::kAll,
                                            openflow::Wildcard::kDstMac);
  entry.match.dst_mac = msg.packet.eth.dst;
  entry.priority = 10;
  entry.action = openflow::OutputAction{{dst_it->second}};
  entry.idle_timeout = 60 * sim::kSecond;
  sw.install_flow(std::move(entry));
  ++stats_.entries_installed;
  sw.packet_out(msg.packet, openflow::OutputAction{{dst_it->second}},
                msg.in_port);
}

}  // namespace identxx::ctrl
