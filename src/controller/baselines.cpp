#include "controller/baselines.hpp"

namespace identxx::ctrl {

void BaselineController::adopt_switch(sim::NodeId switch_id,
                                      sim::SimTime control_latency) {
  topology_->switch_at(switch_id).set_controller(this, control_latency);
  domain_.insert(switch_id);
}

void BaselineController::register_host(net::Ipv4Address ip, sim::NodeId node,
                                       net::MacAddress mac) {
  hosts_[ip] = HostInfo{node, mac};
}

void BaselineController::on_packet_in(const openflow::PacketIn& msg) {
  ++stats_.packet_ins;
  ++stats_.flows_seen;
  const net::FiveTuple flow = msg.packet.five_tuple();
  const net::TenTuple tuple = msg.packet.ten_tuple(msg.in_port);
  if (decide_flow(flow, tuple)) {
    ++stats_.flows_allowed;
    install_and_release(msg, flow);
  } else {
    ++stats_.flows_blocked;
    install_drop(msg);
  }
}

void BaselineController::install_and_release(const openflow::PacketIn& msg,
                                             const net::FiveTuple& flow) {
  const auto src_it = hosts_.find(flow.src_ip);
  const auto dst_it = hosts_.find(flow.dst_ip);
  std::optional<std::vector<openflow::Hop>> hops;
  if (src_it != hosts_.end() && dst_it != hosts_.end()) {
    hops = topology_->path(src_it->second.node, dst_it->second.node);
  }
  if (!hops) {
    topology_->switch_at(msg.switch_id)
        .packet_out(msg.packet, openflow::FloodAction{}, msg.in_port);
    return;
  }
  net::TenTuple tuple = msg.packet.ten_tuple(0);
  const std::uint64_t cookie = next_cookie_++;
  sim::PortId release_port = 0;
  for (const openflow::Hop& hop : *hops) {
    if (hop.switch_id == msg.switch_id) release_port = hop.out_port;
    if (!domain_.contains(hop.switch_id)) continue;
    tuple.in_port = hop.in_port;
    openflow::FlowEntry entry;
    entry.match = openflow::FlowMatch::exact(tuple);
    if (hop.in_port == 0) entry.match.wildcards = openflow::Wildcard::kInPort;
    entry.priority = 100;
    entry.action = openflow::OutputAction{{hop.out_port}};
    entry.idle_timeout = flow_idle_timeout_;
    entry.cookie = cookie;
    topology_->switch_at(hop.switch_id).install_flow(std::move(entry));
    ++stats_.entries_installed;
  }
  if (release_port != 0) {
    topology_->switch_at(msg.switch_id)
        .packet_out(msg.packet, openflow::OutputAction{{release_port}},
                    msg.in_port);
  } else {
    topology_->switch_at(msg.switch_id)
        .packet_out(msg.packet, openflow::FloodAction{}, msg.in_port);
  }
}

void BaselineController::install_drop(const openflow::PacketIn& msg) {
  if (!domain_.contains(msg.switch_id)) return;
  openflow::FlowEntry entry;
  entry.match = openflow::FlowMatch::exact(msg.packet.ten_tuple(msg.in_port));
  entry.priority = 100;
  entry.action = openflow::DropAction{};
  entry.idle_timeout = flow_idle_timeout_;
  entry.cookie = next_cookie_++;
  topology_->switch_at(msg.switch_id).install_flow(std::move(entry));
  ++stats_.entries_installed;
}

// ---------------------------------------------------------------- Vanilla

bool VanillaFirewall::evaluate_acl(const net::FiveTuple& flow) const {
  for (const AclRule& rule : acl_) {
    if (!rule.src.contains(flow.src_ip)) continue;
    if (!rule.dst.contains(flow.dst_ip)) continue;
    if (rule.proto && *rule.proto != flow.proto) continue;
    if (flow.dst_port < rule.dst_port_low || flow.dst_port > rule.dst_port_high)
      continue;
    return rule.allow;
  }
  return default_allow_;
}

bool VanillaFirewall::decide_flow(const net::FiveTuple& flow,
                                  const net::TenTuple& tuple) {
  (void)tuple;
  // Stateful: the reverse of an allowed flow is allowed.
  if (allowed_flows_.contains(flow.reversed())) return true;
  const bool allow = evaluate_acl(flow);
  if (allow) allowed_flows_.insert(flow);
  return allow;
}

// ---------------------------------------------------------------- Ethane

// ---------------------------------------------------------------- learning

void LearningSwitchController::on_packet_in(const openflow::PacketIn& msg) {
  ++stats_.packet_ins;
  openflow::Switch& sw = topology_->switch_at(msg.switch_id);

  // Learn the source MAC's location.
  const Key src_key{msg.switch_id, msg.packet.eth.src.value()};
  const auto [it, inserted] = mac_table_.try_emplace(src_key, msg.in_port);
  if (inserted) {
    ++stats_.macs_learned;
  } else {
    it->second = msg.in_port;  // host moved
  }

  // Forward by destination MAC if known; flood otherwise.
  const Key dst_key{msg.switch_id, msg.packet.eth.dst.value()};
  const auto dst_it = mac_table_.find(dst_key);
  if (dst_it == mac_table_.end()) {
    ++stats_.floods;
    sw.packet_out(msg.packet, openflow::FloodAction{}, msg.in_port);
    return;
  }
  // Install a destination-MAC entry so later packets skip the controller.
  openflow::FlowEntry entry;
  entry.match.wildcards = openflow::without(openflow::Wildcard::kAll,
                                            openflow::Wildcard::kDstMac);
  entry.match.dst_mac = msg.packet.eth.dst;
  entry.priority = 10;
  entry.action = openflow::OutputAction{{dst_it->second}};
  entry.idle_timeout = 60 * sim::kSecond;
  sw.install_flow(std::move(entry));
  ++stats_.entries_installed;
  sw.packet_out(msg.packet, openflow::OutputAction{{dst_it->second}},
                msg.in_port);
}

// ---------------------------------------------------------------- ethane

bool EthaneController::decide_flow(const net::FiveTuple& flow,
                                   const net::TenTuple& tuple) {
  pf::FlowContext ctx;
  ctx.flow = flow;
  ctx.openflow = tuple;  // @src/@dst stay empty: no end-host information
  try {
    return engine_.evaluate(ctx).allowed();
  } catch (const PolicyError&) {
    return false;  // fail closed on admin configuration errors
  }
}

}  // namespace identxx::ctrl
