#pragma once

// ShardMap: the consistent partitioning behind sharded admission domains
// (DESIGN.md §10).  Maps every flow to exactly one admission domain by
// hashing the *canonical* 5-tuple — both directions of a flow hash
// identically, so a domain's decision cache, ACL state table and
// keep-state reverse installs stay shard-local (endpoint affinity).
// Explicit endpoint pins override the hash for operators who want a busy
// server's flows concentrated on (or spread away from) one domain.
//
// Switches are bound to domains too (round-robin by default): the binding
// decides which domain handles transit ident++ queries seen at a switch
// and attributes per-switch bookkeeping.  Cookies are namespaced by shard
// (the top 16 bits) so domains sharing the network's switch tables can
// revoke their own entries without touching a sibling's.

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "net/flow.hpp"
#include "sim/simulator.hpp"

namespace identxx::ctrl {

class ShardMap {
 public:
  /// Cookie layout: the shard tag lives in the top 16 bits.  Tag 0 is the
  /// classic unsharded namespace; domain i uses tag i + 1.
  static constexpr unsigned kCookieShardShift = 48;

  explicit ShardMap(std::uint32_t shard_count)
      : shard_count_(shard_count == 0 ? 1 : shard_count) {}

  [[nodiscard]] std::uint32_t shard_count() const noexcept {
    return shard_count_;
  }

  /// The domain owning `flow`.  Direction-insensitive:
  /// shard_of(f) == shard_of(f.reversed()).
  [[nodiscard]] std::uint32_t shard_of(const net::FiveTuple& flow) const noexcept;

  /// Pin every flow touching `ip` to `shard` (endpoint affinity).  When
  /// both endpoints of a flow are pinned differently, the pin of the
  /// numerically smaller address wins — still direction-insensitive.
  void pin_endpoint(net::Ipv4Address ip, std::uint32_t shard);

  /// Bind a switch to a domain (transit-query handling, bookkeeping).
  void bind_switch(sim::NodeId switch_id, std::uint32_t shard);
  /// The domain a switch is bound to; 0 when never bound.
  [[nodiscard]] std::uint32_t switch_shard(sim::NodeId switch_id) const noexcept;

  /// The shard tag embedded in a cookie (0 = classic unsharded namespace).
  [[nodiscard]] static std::uint32_t cookie_shard_tag(
      std::uint64_t cookie) noexcept {
    return static_cast<std::uint32_t>(cookie >> kCookieShardShift);
  }

 private:
  std::uint32_t shard_count_;
  std::unordered_map<net::Ipv4Address, std::uint32_t> pins_;
  std::unordered_map<sim::NodeId, std::uint32_t> switch_shards_;
};

}  // namespace identxx::ctrl
