#pragma once

// ShardedAdmissionController: N parallel admission domains behind one
// OpenFlow control plane (DESIGN.md §10).
//
// The paper assumes the controller is the scaling bottleneck of flow-based
// admission; this front-end removes the single-controller assumption by
// partitioning flows across `shard_count` full IdentxxController instances
// ("domains") with a consistent ShardMap (canonical 5-tuple hash, endpoint
// affinity).  Each domain owns shard-local state — its PolicyDecisionEngine
// (and thus its SchnorrVerifier with per-key tables and memo), its
// DecisionCache, its ResponseCollector, its install bookkeeping and audit
// log — shared-nothing, no locks anywhere on the decision hot path.
//
// The front-end owns every switch's control channel and dispatches:
//   * ordinary packet-ins by shard_of(flow) — both directions of a flow
//     reach the same domain, so caches and keep-state stay local;
//   * ident++ responses (TCP 783) by the *queried flow* embedded in the
//     response body (the packet's own 5-tuple carries query ports);
//   * transiting ident++ queries by the ingress switch's domain binding;
//   * flow-removed notifications by the cookie's shard namespace.
//
// Domains evaluate decisions on their own simulator shard lane
// (ControllerConfig::decision_lane), so verification and policy evaluation
// for different shards run on parallel workers while every install /
// packet release commits on the global lane — results stay bit-identical
// across shard and worker counts.
//
// Cross-shard control operations (revoke_all / revoke_if / set_policy)
// fan out to every domain in shard order on the global lane ("epoch-
// ordered control events"): shard lanes are quiescent whenever global-lane
// code runs, and each domain's control epoch makes any decision already
// dispatched re-decide at commit, so a racing revocation can never leave a
// stale cover or cached decision in any domain.

#include <memory>
#include <vector>

#include "controller/identxx_controller.hpp"
#include "controller/shard_map.hpp"

namespace identxx::ctrl {

class ShardedAdmissionController : public openflow::ControlPlane {
 public:
  /// `topology` must outlive the controller.  Every domain gets a copy of
  /// `ruleset` and its own FunctionRegistry (with builtins), hence its own
  /// verifier.  `config` is cloned per domain with the shard's name
  /// suffix, decision lane (i + 1) and cookie namespace (i + 1); the
  /// simulator must have at least `shard_count` shard lanes configured.
  ShardedAdmissionController(openflow::Topology* topology, pf::Ruleset ruleset,
                             std::uint32_t shard_count,
                             ControllerConfig config = {});

  // ---- domain wiring -------------------------------------------------------

  /// Take the switch's control channel, install the ident++ intercept boot
  /// rules, bind the switch to a domain (round-robin) and add it to every
  /// domain's install domain.
  void adopt_switch(sim::NodeId switch_id,
                    sim::SimTime control_latency = 100 * sim::kMicrosecond);

  /// Teach every domain where a host lives.
  void register_host(net::Ipv4Address ip, sim::NodeId node,
                     net::MacAddress mac);

  // ---- cross-shard control (fans out to every domain, shard order) ---------

  std::size_t revoke_all();
  std::size_t revoke_if(const std::function<bool(const net::FiveTuple&)>& pred);
  void set_policy(pf::Ruleset ruleset);
  /// §5.1: a compromised controller disables all protection.  While set,
  /// every packet-in — ident++ control traffic included — takes the
  /// owning domain's flood path, exactly like a compromised standalone
  /// controller (responses are never consumed into decisions).
  void set_compromised(bool compromised) noexcept;

  /// Derive per-domain query-port streams from one scenario seed
  /// (scenario.hpp): domain i draws from its own stream, so replay is
  /// invariant to the shard count.
  void seed_query_ports(std::uint64_t seed);

  // ---- observation ---------------------------------------------------------

  [[nodiscard]] std::uint32_t shard_count() const noexcept {
    return static_cast<std::uint32_t>(domains_.size());
  }
  [[nodiscard]] IdentxxController& domain(std::uint32_t shard) {
    return *domains_.at(shard);
  }
  [[nodiscard]] const IdentxxController& domain(std::uint32_t shard) const {
    return *domains_.at(shard);
  }
  [[nodiscard]] const ShardMap& shard_map() const noexcept { return map_; }
  [[nodiscard]] ShardMap& shard_map() noexcept { return map_; }

  /// Field-wise sum of every domain's stats — comparable to a single
  /// controller handling the same traffic.
  [[nodiscard]] ControllerStats aggregated_stats() const;

  /// All domains' audit records merged into the canonical order
  /// (audit_record_before), so the log is identical whatever the shard
  /// count that produced it.
  [[nodiscard]] std::vector<DecisionRecord> merged_audit_log() const;

  /// Sum of installed-flow bookkeeping entries across domains.
  [[nodiscard]] std::size_t installed_flow_count() const noexcept;

  // ---- ControlPlane --------------------------------------------------------

  void on_packet_in(const openflow::PacketIn& msg) override;
  void on_flow_removed(const openflow::FlowRemovedMsg& msg) override;

 private:
  [[nodiscard]] IdentxxController& domain_for_flow(const net::FiveTuple& flow) {
    return *domains_[map_.shard_of(flow)];
  }
  void dispatch_ident(const openflow::PacketIn& msg,
                      const net::FiveTuple& flow);

  openflow::Topology* topology_;
  ShardMap map_;
  std::vector<std::unique_ptr<IdentxxController>> domains_;
  std::uint32_t next_switch_shard_ = 0;  ///< round-robin switch binding
  bool compromised_ = false;
};

}  // namespace identxx::ctrl
