#include "host/host.hpp"

#include "crypto/sha256.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace identxx::host {

namespace {

/// Hosts have a single NIC wired as port 1.
constexpr sim::PortId kNic = 1;

/// Destination MAC used when the sender has not resolved the peer (the
/// controller installs flow entries keyed on whatever MACs the flow's
/// packets carry, so forwarding does not depend on MAC correctness).
const net::MacAddress kBroadcastMac{0xffffffffffffULL};

}  // namespace

Host::Host(std::string name, net::Ipv4Address ip, net::MacAddress mac)
    : name_(std::move(name)), ip_(ip), mac_(mac), daemon_(this) {}

void Host::add_user(std::string user, std::string group) {
  users_[user] = User{user, std::move(group)};
}

int Host::launch(const std::string& user, const std::string& exe_path,
                 std::string_view image_seed) {
  const auto it = users_.find(user);
  if (it == users_.end()) {
    throw Error("launch: unknown user '" + user + "' on " + name_);
  }
  const int pid = next_pid_++;
  processes_[pid] = Process{pid, it->second.name, it->second.group, exe_path,
                            image_hash(exe_path, image_seed)};
  return pid;
}

void Host::kill(int pid) {
  processes_.erase(pid);
  std::erase_if(sockets_, [pid](const Socket& s) { return s.pid == pid; });
}

const Process* Host::process(int pid) const noexcept {
  const auto it = processes_.find(pid);
  return it == processes_.end() ? nullptr : &it->second;
}

net::FiveTuple Host::connect_flow(int pid, net::Ipv4Address dst_ip,
                                  std::uint16_t dst_port, net::IpProto proto) {
  if (!processes_.contains(pid)) {
    throw Error("connect_flow: unknown pid on " + name_);
  }
  const net::FiveTuple flow{ip_, dst_ip, proto, next_ephemeral_port_++, dst_port};
  if (next_ephemeral_port_ < 40000) next_ephemeral_port_ = 40000;  // wrap
  sockets_.push_back(Socket{pid, flow, false});
  return flow;
}

void Host::listen(int pid, std::uint16_t port, net::IpProto proto) {
  if (!processes_.contains(pid)) {
    throw Error("listen: unknown pid on " + name_);
  }
  net::FiveTuple flow;
  flow.dst_ip = ip_;
  flow.dst_port = port;
  flow.proto = proto;
  sockets_.push_back(Socket{pid, flow, true});
}

void Host::close_flow(const net::FiveTuple& flow) {
  std::erase_if(sockets_, [&flow](const Socket& s) {
    return !s.listening && s.flow == flow;
  });
  flow_pairs_.erase(flow);
}

void Host::register_flow_pairs(const net::FiveTuple& flow,
                               proto::KeyValueList pairs) {
  auto& existing = flow_pairs_[flow];
  for (auto& pair : pairs) existing.push_back(std::move(pair));
}

std::optional<proto::FlowOwner> Host::resolve(const net::FiveTuple& flow,
                                              bool as_destination) const {
  const Socket* match = nullptr;
  for (const Socket& socket : sockets_) {
    if (!as_destination) {
      if (!socket.listening && socket.flow == flow) {
        match = &socket;
        break;
      }
    } else {
      // Connected socket for the reversed flow (already accepted)?
      if (!socket.listening && socket.flow == flow.reversed()) {
        match = &socket;
        break;
      }
      // Listening socket on the destination port.
      if (socket.listening && socket.flow.dst_port == flow.dst_port &&
          socket.flow.proto == flow.proto) {
        match = &socket;
        // Keep scanning: a connected socket is more specific.
      }
    }
  }
  if (match == nullptr) return std::nullopt;
  const auto proc_it = processes_.find(match->pid);
  if (proc_it == processes_.end()) return std::nullopt;
  const Process& proc = proc_it->second;

  proto::FlowOwner owner;
  owner.user_id = proc.user;
  owner.group_id = proc.group;
  owner.pid = proc.pid;
  owner.exe_path = proc.exe_path;
  owner.exe_hash = proc.exe_hash;
  if (const auto pairs_it = flow_pairs_.find(flow);
      pairs_it != flow_pairs_.end()) {
    owner.dynamic_pairs = pairs_it->second;
  }
  return owner;
}

void Host::on_packet(const net::Packet& packet, sim::PortId in_port) {
  (void)in_port;
  ++stats_.packets_received;
  if (packet.ip.dst != ip_) {
    // Flooded copy for someone else.
    ++stats_.packets_dropped_wrong_ip;
    return;
  }
  if (packet.tcp && packet.tcp->dst_port == proto::kIdentPort) {
    handle_ident_query(packet);
    return;
  }
  if (ingress_filter_ && !ingress_filter_(packet)) {
    ++stats_.packets_filtered_ingress;
    return;
  }
  ++stats_.flow_payloads_received;
  last_delivery_time_ = simulator()->now();
  delivered_.push_back(packet);
  const net::FiveTuple delivered_flow = packet.five_tuple();
  ++delivered_counts_[delivered_flow];

  // Reorder detection: send_flow_packet stamps a per-flow 1-based sequence
  // (TCP seq / IP identification); a stamped packet arriving below the
  // flow's high-water mark was overtaken in the network.
  const std::uint32_t seq =
      packet.tcp ? packet.tcp->seq : packet.ip.identification;
  if (seq != 0) {
    std::uint32_t& high = max_seq_seen_[delivered_flow];
    if (seq < high) {
      ++reordered_counts_[delivered_flow];
      ++stats_.packets_reordered;
    } else {
      high = seq;
    }
  }

  // TCP accept emulation: answer a SYN to a listening socket with SYN-ACK
  // and record the connected socket (so the daemon resolves the flow on
  // later queries about either direction).
  if (auto_accept_ && packet.tcp && (packet.tcp->flags & net::TcpFlags::kSyn) &&
      !(packet.tcp->flags & net::TcpFlags::kAck)) {
    const net::FiveTuple flow = packet.five_tuple();
    for (const Socket& socket : sockets_) {
      if (socket.listening && socket.flow.proto == flow.proto &&
          socket.flow.dst_port == flow.dst_port) {
        sockets_.push_back(Socket{socket.pid, flow.reversed(), false});
        send_flow_packet(flow.reversed(), "",
                         net::TcpFlags::kSyn | net::TcpFlags::kAck);
        break;
      }
    }
  }
}

void Host::handle_ident_query(const net::Packet& packet) {
  ++stats_.ident_queries_received;
  if (!daemon_enabled_) {
    // No daemon: the query goes unanswered (the controller times out).
    ++stats_.ident_queries_ignored;
    return;
  }
  // RFC-1413 compatibility: classic "port , port" queries get classic
  // one-line answers (§6 lineage; legacy auditing clients keep working).
  if (!response_forger_) {
    if (const auto classic = daemon_.answer_classic(packet.payload_text(),
                                                    packet.ip.src, ip_)) {
      net::Packet reply = net::make_tcp_packet(
          mac_, packet.eth.src, ip_, packet.ip.src, proto::kIdentPort,
          packet.tcp->src_port, *classic + "\r\n",
          net::TcpFlags::kPsh | net::TcpFlags::kAck);
      ++stats_.packets_sent;
      simulator()->send(id(), kNic, std::move(reply));
      return;
    }
  }
  proto::Query query;
  try {
    query = proto::Query::parse(packet.payload_text());
  } catch (const ParseError& e) {
    IDXX_LOG(kWarn, "host") << name_ << ": malformed ident++ query: "
                            << e.what();
    return;
  }
  const net::Ipv4Address peer_ip = packet.ip.src;
  const proto::Response response =
      response_forger_ ? response_forger_(query, peer_ip)
                       : daemon_.answer(query, peer_ip, ip_);

  // Reply to wherever the query claimed to come from; ident++-enabled
  // firewalls on the path intercept it (§2).
  net::Packet reply = net::make_tcp_packet(
      mac_, packet.eth.src, ip_, peer_ip, proto::kIdentPort,
      packet.tcp->src_port, response.serialize(),
      net::TcpFlags::kPsh | net::TcpFlags::kAck);
  ++stats_.packets_sent;
  simulator()->send(id(), kNic, std::move(reply));
}

void Host::send_flow_packet(const net::FiveTuple& flow, std::string_view payload,
                            std::uint8_t tcp_flags) {
  net::Packet packet;
  // 1-based per-flow sequence stamp so the receiver can count out-of-order
  // deliveries (TCP carries it in seq, UDP in the IP identification field
  // — 16-bit there, which wraps long before any scenario does).
  const std::uint32_t seq = ++send_seqs_[flow];
  if (flow.proto == net::IpProto::kUdp) {
    packet = net::make_udp_packet(mac_, kBroadcastMac, flow.src_ip, flow.dst_ip,
                                  flow.src_port, flow.dst_port, payload);
    packet.ip.identification = static_cast<std::uint16_t>(seq);
  } else {
    packet = net::make_tcp_packet(mac_, kBroadcastMac, flow.src_ip, flow.dst_ip,
                                  flow.src_port, flow.dst_port, payload,
                                  tcp_flags);
    packet.tcp->seq = seq;
  }
  ++stats_.packets_sent;
  simulator()->send(id(), kNic, std::move(packet));
}

std::string Host::image_hash(std::string_view exe_path,
                             std::string_view image_seed) {
  crypto::Sha256 h;
  h.update("exe-image:");
  h.update(exe_path);
  h.update("#");
  h.update(image_seed);
  return crypto::to_hex(h.finish());
}

}  // namespace identxx::host
