#pragma once

// End-host model.
//
// A Host is a simulator node with an IP/MAC, a user table, a process table
// and a socket table.  The socket table implements proto::FlowResolver —
// the deterministic stand-in for the `lsof`-style kernel introspection the
// paper's daemon performs (§3.5, and DESIGN.md's substitution table).
//
// Each host runs an ident++ Daemon answering queries on TCP port 783, and
// exposes the run-time API applications use to attach per-flow key-value
// pairs (standing in for the Unix domain socket).
//
// Security hooks for the §5 experiments: a host can be marked compromised
// (its daemon then emits attacker-chosen responses), the daemon can be
// disabled entirely (incremental-deployment scenario), and processes can be
// launched with a tampered executable image (hash changes, signatures stop
// verifying).

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "identxx/daemon.hpp"
#include "identxx/wire.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace identxx::host {

struct User {
  std::string name;
  std::string group;
};

/// A running process.
struct Process {
  int pid = 0;
  std::string user;
  std::string group;
  std::string exe_path;
  std::string exe_hash;  ///< SHA-256 of the (simulated) executable image
};

/// One socket table entry.
struct Socket {
  int pid = 0;
  net::FiveTuple flow;   ///< fully specified for connected, dst zero for listening
  bool listening = false;
};

struct HostStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_received = 0;
  std::uint64_t packets_dropped_wrong_ip = 0;
  std::uint64_t flow_payloads_received = 0;
  std::uint64_t ident_queries_received = 0;
  std::uint64_t ident_queries_ignored = 0;  ///< daemon down (DESIGN.md §14)
  std::uint64_t packets_filtered_ingress = 0;
  /// Stamped payload packets that arrived behind a later-sent packet of
  /// their flow (multipath re-pinning, path changes mid-flow).
  std::uint64_t packets_reordered = 0;
};

class Host : public sim::Node, public proto::FlowResolver {
 public:
  Host(std::string name, net::Ipv4Address ip, net::MacAddress mac);

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] net::Ipv4Address ip() const noexcept { return ip_; }
  [[nodiscard]] net::MacAddress mac() const noexcept { return mac_; }

  // ---- users & processes -------------------------------------------------

  void add_user(std::string user, std::string group);

  /// Launch `exe_path` as `user`.  The executable image content is derived
  /// from `exe_path` and `image_seed`; a different seed models a modified
  /// (e.g. trojaned) binary whose hash no longer matches any signature.
  /// Returns the new pid.  Throws Error for unknown users.
  int launch(const std::string& user, const std::string& exe_path,
             std::string_view image_seed = "");

  void kill(int pid);

  [[nodiscard]] const Process* process(int pid) const noexcept;

  // ---- sockets (the lsof substitute) --------------------------------------

  /// Open an outbound flow from `pid`: allocates an ephemeral source port
  /// and records the socket.  Returns the flow 5-tuple.
  net::FiveTuple connect_flow(int pid, net::Ipv4Address dst_ip,
                              std::uint16_t dst_port,
                              net::IpProto proto = net::IpProto::kTcp);

  /// Record a listening socket for `pid` on `port`.
  void listen(int pid, std::uint16_t port,
              net::IpProto proto = net::IpProto::kTcp);

  /// When enabled, a TCP SYN delivered to a listening socket is accepted
  /// automatically: a connected socket is recorded for the reverse flow
  /// and a SYN-ACK is emitted.  With a `keep state` policy the SYN-ACK
  /// rides the reverse-path entries; under a stateless policy it faces the
  /// controller as a fresh flow — exactly PF's semantics.
  void set_auto_accept(bool enabled) noexcept { auto_accept_ = enabled; }

  void close_flow(const net::FiveTuple& flow);

  // ---- application -> daemon run-time API (§3.5) ---------------------------

  /// Attach dynamic key-value pairs to one flow (the web-browser
  /// user-click example).  Delivered in the response's last section.
  void register_flow_pairs(const net::FiveTuple& flow,
                           proto::KeyValueList pairs);

  // ---- daemon ---------------------------------------------------------------

  [[nodiscard]] proto::Daemon& daemon() noexcept { return daemon_; }
  [[nodiscard]] const proto::Daemon& daemon() const noexcept { return daemon_; }

  /// Disable/enable the ident++ daemon (incremental deployment, §4).
  void set_daemon_enabled(bool enabled) noexcept { daemon_enabled_ = enabled; }
  [[nodiscard]] bool daemon_enabled() const noexcept { return daemon_enabled_; }

  /// Ingress filter for the distributed-firewall baseline (§6): applied to
  /// every packet addressed to this host before delivery; returning false
  /// drops it.  Note the packet has already consumed network resources and
  /// host CPU by this point — the DoS weakness the paper calls out.
  using IngressFilter = std::function<bool(const net::Packet&)>;
  void set_ingress_filter(IngressFilter filter) {
    ingress_filter_ = std::move(filter);
  }

  /// §5.3: full host compromise — the attacker controls daemon responses.
  using ResponseForger = std::function<proto::Response(
      const proto::Query&, net::Ipv4Address peer_ip)>;
  void set_compromised(ResponseForger forger) {
    response_forger_ = std::move(forger);
  }
  [[nodiscard]] bool compromised() const noexcept {
    return static_cast<bool>(response_forger_);
  }

  // ---- FlowResolver ----------------------------------------------------------

  [[nodiscard]] std::optional<proto::FlowOwner> resolve(
      const net::FiveTuple& flow, bool as_destination) const override;

  // ---- network -----------------------------------------------------------------

  void on_packet(const net::Packet& packet, sim::PortId in_port) override;

  /// Emit the first packet of `flow` (a SYN for TCP) with `payload`.
  void send_flow_packet(const net::FiveTuple& flow, std::string_view payload = "",
                        std::uint8_t tcp_flags = net::TcpFlags::kSyn);

  /// Packets whose payload was delivered to an application socket,
  /// newest last (observable by tests).
  [[nodiscard]] const std::vector<net::Packet>& delivered() const noexcept {
    return delivered_;
  }

  /// Simulated time of the most recent payload delivery; -1 if none yet.
  /// Benchmarks use this to measure flow-setup latency.
  [[nodiscard]] sim::SimTime last_delivery_time() const noexcept {
    return last_delivery_time_;
  }

  /// Payload packets of `flow` delivered so far — O(1), maintained
  /// alongside delivered().  The closed-loop traffic senders
  /// (net::traffic::FlowDriver) read this as their ACK signal.
  [[nodiscard]] std::uint64_t delivered_count(const net::FiveTuple& flow) const {
    const auto it = delivered_counts_.find(flow);
    return it == delivered_counts_.end() ? 0 : it->second;
  }

  /// Out-of-order deliveries observed for `flow` — a delivered packet
  /// whose sender-stamped sequence number is below one already seen (e.g.
  /// an ECMP re-pin moved the flow onto a faster equal-cost path while
  /// older packets were still in flight on the slower one).  Only packets
  /// stamped by send_flow_packet count; control traffic is unstamped.
  [[nodiscard]] std::uint64_t reordered_count(const net::FiveTuple& flow) const {
    const auto it = reordered_counts_.find(flow);
    return it == reordered_counts_.end() ? 0 : it->second;
  }

  /// Drop the delivered-packet log (long benchmark runs).
  void clear_delivered() noexcept {
    delivered_.clear();
    delivered_counts_.clear();
    reordered_counts_.clear();
    max_seq_seen_.clear();
  }

  [[nodiscard]] const HostStats& stats() const noexcept { return stats_; }

  /// Compute the simulated executable hash for (path, seed) — the daemon
  /// reports this as exe-hash, and signers sign it.
  [[nodiscard]] static std::string image_hash(std::string_view exe_path,
                                              std::string_view image_seed);

 private:
  void handle_ident_query(const net::Packet& packet);

  std::string name_;
  net::Ipv4Address ip_;
  net::MacAddress mac_;
  std::unordered_map<std::string, User> users_;
  std::unordered_map<int, Process> processes_;
  std::vector<Socket> sockets_;
  std::unordered_map<net::FiveTuple, proto::KeyValueList> flow_pairs_;
  proto::Daemon daemon_;
  bool daemon_enabled_ = true;
  bool auto_accept_ = false;
  ResponseForger response_forger_;
  IngressFilter ingress_filter_;
  int next_pid_ = 100;
  std::uint16_t next_ephemeral_port_ = 40000;
  std::vector<net::Packet> delivered_;
  std::unordered_map<net::FiveTuple, std::uint64_t> delivered_counts_;
  /// Sender-side per-flow sequence stamps (1-based; 0 = unstamped) and the
  /// receiver-side high-water marks + out-of-order tallies they feed.
  std::unordered_map<net::FiveTuple, std::uint32_t> send_seqs_;
  std::unordered_map<net::FiveTuple, std::uint32_t> max_seq_seen_;
  std::unordered_map<net::FiveTuple, std::uint64_t> reordered_counts_;
  sim::SimTime last_delivery_time_ = -1;
  HostStats stats_;
};

}  // namespace identxx::host
