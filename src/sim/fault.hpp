#pragma once

// Seeded control-plane fault model (DESIGN.md §14): per-channel loss, delay
// and duplication driven by a private SplitMix64 stream derived from the
// scenario seed and the channel's name.  Draws happen where the message is
// emitted — always on the simulator's global lane — so a faulted run stays
// bit-identical at any shard or worker count, and the model checker can
// replay it schedule by schedule.

#include <cstdint>
#include <string_view>

#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace identxx::sim {

/// Fault parameters for one control channel (switch ↔ controller).
struct ChannelFaultSpec {
  double loss = 0.0;  ///< P(message silently dropped)
  double dup = 0.0;   ///< P(message delivered twice)
  /// Maximum extra one-way latency; each delivery draws uniformly from
  /// [0, delay] in nanoseconds.  Drawing per message (rather than adding a
  /// fixed shift) models jitter — messages reorder — and keeps delayed
  /// deliveries off exact collision instants with unrelated events, whose
  /// relative order is the one thing that may differ across shard counts.
  SimTime delay = 0;

  [[nodiscard]] bool active() const noexcept {
    return loss > 0.0 || dup > 0.0 || delay > 0;
  }
};

/// What the channel actually did to the messages it carried.
struct ChannelFaultStats {
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t delayed = 0;

  bool operator==(const ChannelFaultStats&) const = default;
};

/// FNV-1a, used instead of std::hash so fault streams are stable across
/// standard libraries (seeds feed golden tests and CI reproduction).
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view text) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// Derives the per-channel RNG seed.  Mixing the channel name through the
/// SplitMix64 finalizer keeps streams independent per switch and invariant
/// to the order channels are configured in.
[[nodiscard]] constexpr std::uint64_t fault_stream_seed(
    std::uint64_t scenario_seed, std::string_view channel) noexcept {
  util::SplitMix64 derive(scenario_seed ^ 0x94d049bb133111ebULL ^
                          fnv1a64(channel));
  return derive.next();
}

/// One faulted control channel: spec + private RNG stream + counters.
/// Every message draws the loss Bernoulli, the duplication Bernoulli and
/// (when the spec enables delay) the delay value in a fixed order, whatever
/// the outcome, so the stream position depends only on how many messages
/// were offered — never on earlier fault decisions.
class FaultChannel {
 public:
  FaultChannel(const ChannelFaultSpec& spec, std::uint64_t seed) noexcept
      : spec_(spec), rng_(seed) {}

  struct Draw {
    bool dropped = false;
    bool duplicated = false;
    SimTime delay = 0;
  };

  [[nodiscard]] Draw draw() noexcept {
    Draw d;
    d.dropped = rng_.next_bool(spec_.loss);
    d.duplicated = rng_.next_bool(spec_.dup);
    if (spec_.delay > 0) {
      // Drawn whenever the spec enables delay — like the Bernoullis, the
      // stream position depends only on the spec and the message count.
      d.delay = static_cast<SimTime>(
          rng_.next_below(static_cast<std::uint64_t>(spec_.delay) + 1));
    }
    return d;
  }

  [[nodiscard]] const ChannelFaultSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] ChannelFaultStats& stats() noexcept { return stats_; }
  [[nodiscard]] const ChannelFaultStats& stats() const noexcept {
    return stats_;
  }

 private:
  ChannelFaultSpec spec_;
  util::SplitMix64 rng_;
  ChannelFaultStats stats_;
};

}  // namespace identxx::sim
