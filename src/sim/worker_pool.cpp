#include "sim/worker_pool.hpp"

#include <atomic>

namespace identxx::sim {

namespace {

/// Worker-slot numbering is process-wide so a slot identifies a thread
/// even when several simulators (and pools) coexist in one test binary.
std::atomic<unsigned> g_next_worker_slot{1};
thread_local unsigned t_worker_slot = 0;

}  // namespace

unsigned WorkerPool::current_worker_slot() noexcept { return t_worker_slot; }

unsigned WorkerPool::hardware_workers() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

WorkerPool::WorkerPool(unsigned workers) {
  const unsigned spawn = workers > 1 ? workers - 1 : 0;
  threads_.reserve(spawn);
  for (unsigned i = 0; i < spawn; ++i) {
    threads_.emplace_back([this] { worker_main(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    const std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void WorkerPool::drain_tasks() {
  for (;;) {
    std::function<void()>* task = nullptr;
    {
      const std::scoped_lock lock(mutex_);
      if (tasks_ == nullptr || next_task_ >= tasks_->size()) return;
      task = &(*tasks_)[next_task_++];
    }
    (*task)();
    {
      const std::scoped_lock lock(mutex_);
      if (--unfinished_ == 0) done_cv_.notify_all();
    }
  }
}

void WorkerPool::worker_main() {
  t_worker_slot = g_next_worker_slot.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [&] {
        return stop_ || (tasks_ != nullptr && generation_ != seen_generation &&
                         next_task_ < tasks_->size());
      });
      if (stop_) return;
      seen_generation = generation_;
    }
    drain_tasks();
  }
}

void WorkerPool::run(std::vector<std::function<void()>>& tasks) {
  if (tasks.empty()) return;
  {
    const std::scoped_lock lock(mutex_);
    tasks_ = &tasks;
    next_task_ = 0;
    unfinished_ = tasks.size();
    ++generation_;
  }
  work_cv_.notify_all();
  drain_tasks();  // the calling thread pulls tasks too
  {
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [&] { return unfinished_ == 0; });
    tasks_ = nullptr;
  }
}

}  // namespace identxx::sim
