#pragma once

// WorkerPool: the fixed thread pool behind the simulator's parallel shard
// lanes (simulator.hpp).  One wave of shard-lane event batches is handed
// over as a task list; run() distributes the tasks across the pool (the
// calling thread participates) and blocks until every task finished — the
// barrier that keeps the virtual-clock epochs synchronized.
//
// Tasks must not throw (the simulator's wave wrappers capture exceptions
// themselves) and must not call run() reentrantly.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace identxx::sim {

class WorkerPool {
 public:
  /// `workers` is the total parallelism; the pool spawns `workers - 1`
  /// threads and the caller of run() contributes the last lane.
  explicit WorkerPool(unsigned workers);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Execute every task (distributed by index across the pool plus the
  /// calling thread) and return once all of them completed.
  void run(std::vector<std::function<void()>>& tasks);

  /// Total parallelism (pool threads + the calling thread).
  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(threads_.size()) + 1;
  }

  /// 0 on threads outside any pool (the simulation main thread), a stable
  /// value >= 1 on pool threads.  Per-worker caches (Topology's path memo)
  /// branch on this to pick their private slot.
  [[nodiscard]] static unsigned current_worker_slot() noexcept;

  /// max(1, hardware_concurrency) — the "use every core" worker count.
  [[nodiscard]] static unsigned hardware_workers() noexcept;

 private:
  void worker_main();
  /// Pop-and-run tasks of the current generation until none remain.
  void drain_tasks();

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::function<void()>>* tasks_ = nullptr;
  std::size_t next_task_ = 0;
  std::size_t unfinished_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace identxx::sim
