#pragma once

// Schedule-controller hook for the multi-queue simulator (DESIGN.md §13).
//
// The wave loop in Simulator::run_wave normally executes the shard-lane
// phase in canonical ascending-lane order (serially) or in parallel with a
// canonical staged merge; either way the observable event sequence is the
// same.  A ScheduleController lets a model checker dictate the *modeled
// arrival order* of the shard-lane batches instead: the wave still runs
// serially, but the per-wave lane execution order is whatever plan_wave
// returns, while the staged cross-lane merge stays canonical (ascending
// lane order) — exactly the commutativity obligation the deterministic-
// merge spec places on shard code.  If shard lanes only communicate through
// the staged global-lane commit protocol, every execution order yields a
// bit-identical ScenarioResult; a divergence is an ordering bug.
//
// The controller also observes logical-resource accesses (on_access) so a
// DPOR-style explorer can build commutativity footprints: two lane batches
// in the same wave are independent unless they touched the same switch,
// cookie namespace, control epoch, or path-cache epoch, with at least one
// side writing.

#include <cstdint>
#include <vector>

namespace identxx::sim {

using LaneId = std::uint32_t;
using SimTime = std::int64_t;

/// One logical-resource access, reported by instrumentation points in the
/// controller / switch / topology layers via sim::note_access.
struct LaneAccess {
  enum class Kind : std::uint8_t {
    kSwitch,           ///< flow-table / queue state of one switch (id = node)
    kCookieNamespace,  ///< a domain's cookie allocation space (id = namespace)
    kControlEpoch,     ///< a domain's control epoch (id = namespace)
    kPathEpoch,        ///< the topology path-cache epoch (id = topology)
  };
  Kind kind = Kind::kSwitch;
  std::uint64_t id = 0;
  bool write = false;

  [[nodiscard]] bool conflicts_with(const LaneAccess& other) const noexcept {
    return kind == other.kind && id == other.id && (write || other.write);
  }
};

/// Dictates per-wave shard-lane execution order and observes accesses.
/// Attach with Simulator::set_schedule_controller; the simulator then runs
/// every shard phase serially under the controller's direction.
class ScheduleController {
 public:
  virtual ~ScheduleController() = default;

  /// Called once per wave with the active shard lanes in canonical
  /// ascending order.  Permute `order` in place to dictate the modeled
  /// arrival order; leaving it untouched reproduces the canonical run
  /// bit-for-bit.
  virtual void plan_wave(SimTime when, std::vector<LaneId>& order) = 0;

  /// Called for every instrumented logical-resource access while the
  /// controller is attached.  `origin` is the shard lane the access is
  /// attributed to: the executing lane during the shard phase, or — for
  /// global-lane work such as staged decision commits — the lane whose
  /// execution scheduled it (propagated transitively).
  virtual void on_access(LaneId origin, const LaneAccess& access) = 0;
};

/// Report a logical-resource access from instrumented code.  No-op unless
/// the thread is currently executing a simulator event and that simulator
/// has a ScheduleController attached, so the hooks cost one thread-local
/// load on production paths.
void note_access(const LaneAccess& access) noexcept;

}  // namespace identxx::sim
