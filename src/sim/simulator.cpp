#include "sim/simulator.hpp"

#include <algorithm>
#include <utility>

#include "sim/worker_pool.hpp"
#include "util/logging.hpp"

namespace identxx::sim {

namespace {

/// Which simulator/lane the current thread is executing an event for, and
/// (during the parallel shard phase) where its newly scheduled events go.
/// Thread-local so shard-lane handlers on pool threads stage instead of
/// touching the shared queues.  `origin` is the shard lane the current
/// event is attributed to for schedule-exploration footprints: the
/// executing lane for shard work, or — for global-lane events such as
/// staged decision commits — the shard lane whose execution scheduled
/// them, propagated transitively through schedule_on.
struct ExecContext {
  Simulator* sim = nullptr;
  LaneId lane = kGlobalLane;
  std::vector<Simulator::StagedEvent>* staging = nullptr;
  LaneId origin = kGlobalLane;
};
thread_local ExecContext t_exec;

class ExecScope {
 public:
  ExecScope(Simulator* sim, LaneId lane,
            std::vector<Simulator::StagedEvent>* staging,
            LaneId origin) noexcept
      : saved_(t_exec) {
    t_exec = ExecContext{sim, lane, staging, origin};
  }
  ~ExecScope() noexcept { t_exec = saved_; }
  ExecScope(const ExecScope&) = delete;
  ExecScope& operator=(const ExecScope&) = delete;

 private:
  ExecContext saved_;
};

}  // namespace

void note_access(const LaneAccess& access) noexcept {
  if (t_exec.sim == nullptr) return;
  ScheduleController* controller = t_exec.sim->schedule_controller();
  if (controller == nullptr) return;
  controller->on_access(t_exec.origin, access);
}

Simulator::Simulator() : lanes_(1) {}
Simulator::~Simulator() = default;

NodeId Simulator::add_node(std::unique_ptr<Node> node) {
  const auto id = static_cast<NodeId>(nodes_.size());
  node->attach(this, id);
  nodes_.push_back(std::move(node));
  return id;
}

void Simulator::configure_shard_lanes(std::uint32_t shard_lanes) {
  while (lanes_.size() < static_cast<std::size_t>(shard_lanes) + 1) {
    lanes_.emplace_back();
  }
}

void Simulator::set_workers(std::uint32_t workers) {
  if (workers > workers_) {
    workers_ = workers;
    pool_.reset();  // rebuilt at the right size on the next parallel wave
  }
}

void Simulator::ensure_pool() {
  if (!pool_) pool_ = std::make_unique<WorkerPool>(workers_);
}

void Simulator::connect(NodeId a, PortId a_port, NodeId b, PortId b_port,
                        SimTime latency, std::uint64_t bandwidth_bps) {
  if (a >= nodes_.size() || b >= nodes_.size()) {
    throw SimError("connect: unknown node id");
  }
  if (a_port == 0 || b_port == 0) {
    throw SimError("connect: port 0 is reserved");
  }
  if (latency < 0) {
    throw SimError("connect: negative latency");
  }
  const auto key_a = port_key(a, a_port);
  const auto key_b = port_key(b, b_port);
  if (links_.contains(key_a) || links_.contains(key_b)) {
    throw SimError("connect: port already wired");
  }
  links_[key_a] = LinkEnd{b, b_port, latency, bandwidth_bps};
  links_[key_b] = LinkEnd{a, a_port, latency, bandwidth_bps};
}

SimTime serialization_delay(const net::Packet& packet,
                            std::uint64_t bandwidth_bps) noexcept {
  if (bandwidth_bps == 0) return 0;
  const std::uint64_t wire_bits =
      (net::EthernetHeader::kSize + net::Ipv4Header::kSize +
       packet.payload.size() + 20 /* transport approx */) * 8;
  return static_cast<SimTime>(wire_bits * static_cast<std::uint64_t>(kSecond) /
                              bandwidth_bps);
}

void Simulator::send(NodeId from, PortId port, net::Packet packet) {
  const auto it = links_.find(port_key(from, port));
  if (it == links_.end()) {
    ++stats_.packets_dropped_no_link;
    IDXX_LOG(kDebug, "sim") << nodes_[from]->name() << " port " << port
                            << ": send on unwired port dropped";
    return;
  }
  const LinkEnd link = it->second;
  const SimTime delay =
      link.latency + serialization_delay(packet, link.bandwidth_bps);
  schedule_after(delay, [this, from, port, link,
                         packet = std::move(packet)]() mutable {
    ++stats_.packets_delivered;
    if (tracer_) {
      tracer_(now_, from, port, link.peer, link.peer_port, packet);
    }
    nodes_[link.peer]->on_packet(packet, link.peer_port);
  });
}

void Simulator::push_event(LaneId lane, SimTime when, LaneId origin,
                           std::function<void()> action) {
  lanes_[lane].queue.push(
      Event{when, next_sequence_++, origin, std::move(action)});
}

void Simulator::schedule_on(LaneId lane, SimTime when,
                            std::function<void()> callback) {
  if (lane >= lanes_.size()) {
    throw SimError("schedule_on: unknown lane");
  }
  if (when < now_) {
    throw SimError("schedule_at: time in the past");
  }
  // Shard attribution: work scheduled from an event with shard ancestry
  // keeps that ancestry (so a staged commit's effects count against its
  // origin lane); fresh work is attributed to its target lane.
  LaneId origin = t_exec.sim == this ? t_exec.origin : kGlobalLane;
  if (origin == kGlobalLane) origin = lane;
  if (t_exec.sim == this && t_exec.staging != nullptr) {
    // Parallel shard phase: stage; the epoch barrier merges in lane order.
    t_exec.staging->push_back(
        StagedEvent{lane, when, origin, std::move(callback)});
    return;
  }
  push_event(lane, when, origin, std::move(callback));
}

void Simulator::schedule_at(SimTime when, std::function<void()> callback) {
  const LaneId lane = t_exec.sim == this ? t_exec.lane : kGlobalLane;
  schedule_on(lane, when, std::move(callback));
}

void Simulator::schedule_after(SimTime delay, std::function<void()> callback) {
  schedule_at(now_ + delay, std::move(callback));
}

bool Simulator::idle() const noexcept {
  for (const Lane& lane : lanes_) {
    if (!lane.queue.empty()) return false;
  }
  return true;
}

SimTime Simulator::next_event_time() const noexcept {
  SimTime t = -1;
  for (const Lane& lane : lanes_) {
    if (lane.queue.empty()) continue;
    if (t < 0 || lane.queue.top().when < t) t = lane.queue.top().when;
  }
  return t;
}

std::uint64_t Simulator::run_wave(SimTime t) {
  // Pop the wave: every event at exactly `t`, per lane in FIFO seq order.
  std::vector<std::vector<Event>> batches(lanes_.size());
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    auto& queue = lanes_[i].queue;
    while (!queue.empty() && queue.top().when == t) {
      batches[i].push_back(std::move(const_cast<Event&>(queue.top())));
      queue.pop();
    }
  }

  std::uint64_t executed = 0;

  // Global-lane phase: serial; schedules go straight into the queues,
  // which reproduces the historical single-queue order exactly.  Under a
  // schedule controller each event runs with its own shard attribution so
  // staged commits report accesses against their origin lane.
  if (schedule_controller_ != nullptr) {
    for (Event& event : batches[kGlobalLane]) {
      ExecScope scope(this, kGlobalLane, nullptr, event.origin);
      event.action();
      ++executed;
    }
  } else {
    ExecScope scope(this, kGlobalLane, nullptr, kGlobalLane);
    for (Event& event : batches[kGlobalLane]) {
      event.action();
      ++executed;
    }
  }

  // Shard-lane phase: lanes touch disjoint shard-local state, so they may
  // run in parallel.  New events are staged per lane and merged at the
  // barrier in lane order — the same order a serial pass produces — so the
  // result is independent of the worker count.
  std::vector<LaneId> active;
  for (LaneId lane = 1; lane < batches.size(); ++lane) {
    if (!batches[lane].empty()) active.push_back(lane);
  }
  if (!active.empty()) {
    if (schedule_controller_ != nullptr) {
      // Schedule-exploration path (DESIGN.md §13): run the shard batches
      // serially in the order the controller dictates — the modeled
      // arrival order — while keeping the cross-lane merge canonical
      // (ascending lane order), exactly as the parallel barrier would.
      // With an identity controller this is bit-identical to both serial
      // and parallel canonical execution.
      std::vector<LaneId> order = active;
      schedule_controller_->plan_wave(t, order);
      std::vector<std::vector<StagedEvent>> staged(order.size());
      for (std::size_t k = 0; k < order.size(); ++k) {
        const LaneId lane = order[k];
        ExecScope scope(this, lane, &staged[k], lane);
        for (Event& event : batches[lane]) {
          event.action();
          ++executed;
        }
      }
      if (fault_merge_arrival_order_) {
        // Injected mutation: commit staged events in modeled arrival
        // order.  Divergences under permuted schedules are the checker's
        // self-test signal.
        for (auto& lane_staged : staged) {
          for (StagedEvent& event : lane_staged) {
            push_event(event.lane, event.when, event.origin,
                       std::move(event.action));
          }
        }
      } else {
        for (const LaneId lane : active) {
          const std::size_t k = static_cast<std::size_t>(
              std::find(order.begin(), order.end(), lane) - order.begin());
          for (StagedEvent& event : staged[k]) {
            push_event(event.lane, event.when, event.origin,
                       std::move(event.action));
          }
        }
      }
    } else if (workers_ <= 1 || active.size() == 1) {
      for (const LaneId lane : active) {
        ExecScope scope(this, lane, nullptr, lane);
        for (Event& event : batches[lane]) {
          event.action();
          ++executed;
        }
      }
    } else {
      std::vector<std::vector<StagedEvent>> staged(active.size());
      std::vector<std::exception_ptr> errors(active.size());
      std::vector<std::function<void()>> tasks;
      tasks.reserve(active.size());
      for (std::size_t k = 0; k < active.size(); ++k) {
        tasks.push_back([this, &batches, &staged, &errors, k,
                         lane = active[k]]() noexcept {
          ExecScope scope(this, lane, &staged[k], lane);
          try {
            for (Event& event : batches[lane]) event.action();
          } catch (...) {
            errors[k] = std::current_exception();
          }
        });
      }
      ensure_pool();
      pool_->run(tasks);
      for (const LaneId lane : active) executed += batches[lane].size();
      for (auto& lane_staged : staged) {
        for (StagedEvent& event : lane_staged) {
          push_event(event.lane, event.when, event.origin,
                     std::move(event.action));
        }
      }
      for (const auto& error : errors) {
        if (error) std::rethrow_exception(error);
      }
    }
  }

  stats_.events_executed += executed;
  return executed;
}

std::uint64_t Simulator::run(SimTime deadline) {
  std::uint64_t executed = 0;
  // Single-lane fast path (every unsharded run): the historical
  // pop-execute loop, no per-wave batch allocation.  Semantically
  // identical to the wave loop restricted to one lane.  The lane count is
  // re-checked each iteration (an event may configure shard lanes, which
  // can also reallocate lanes_); any remainder falls through to the wave
  // loop below.
  while (lanes_.size() == 1 && !lanes_[kGlobalLane].queue.empty()) {
    auto& queue = lanes_[kGlobalLane].queue;
    if (deadline >= 0 && queue.top().when > deadline) break;
    Event event = std::move(const_cast<Event&>(queue.top()));
    queue.pop();
    now_ = event.when;
    {
      ExecScope scope(this, kGlobalLane, nullptr, event.origin);
      event.action();
    }
    ++executed;
    ++stats_.events_executed;
  }
  for (;;) {
    const SimTime t = next_event_time();
    if (t < 0) break;
    if (deadline >= 0 && t > deadline) break;
    now_ = t;
    executed += run_wave(t);
  }
  if (deadline >= 0 && now_ < deadline && idle()) {
    now_ = deadline;
  }
  return executed;
}

std::uint64_t Simulator::run_events(std::uint64_t max_events) {
  // Bounded single-step execution (tests/debugging): events run one at a
  // time in the canonical (when, sequence) order across all lanes.
  std::uint64_t executed = 0;
  while (executed < max_events) {
    std::size_t best = lanes_.size();
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
      if (lanes_[i].queue.empty()) continue;
      if (best == lanes_.size() ||
          EventLater{}(lanes_[best].queue.top(), lanes_[i].queue.top())) {
        best = i;
      }
    }
    if (best == lanes_.size()) break;
    Event event = std::move(const_cast<Event&>(lanes_[best].queue.top()));
    lanes_[best].queue.pop();
    now_ = event.when;
    {
      ExecScope scope(this, static_cast<LaneId>(best), nullptr, event.origin);
      event.action();
    }
    ++executed;
    ++stats_.events_executed;
  }
  return executed;
}

Node& Simulator::node(NodeId id) {
  if (id >= nodes_.size()) throw SimError("node: unknown id");
  return *nodes_[id];
}

const Node& Simulator::node(NodeId id) const {
  if (id >= nodes_.size()) throw SimError("node: unknown id");
  return *nodes_[id];
}

const LinkEnd* Simulator::link_at(NodeId node, PortId port) const noexcept {
  const auto it = links_.find(port_key(node, port));
  return it == links_.end() ? nullptr : &it->second;
}

}  // namespace identxx::sim
