#include "sim/simulator.hpp"

#include <utility>

#include "util/logging.hpp"

namespace identxx::sim {

NodeId Simulator::add_node(std::unique_ptr<Node> node) {
  const auto id = static_cast<NodeId>(nodes_.size());
  node->attach(this, id);
  nodes_.push_back(std::move(node));
  return id;
}

void Simulator::connect(NodeId a, PortId a_port, NodeId b, PortId b_port,
                        SimTime latency, std::uint64_t bandwidth_bps) {
  if (a >= nodes_.size() || b >= nodes_.size()) {
    throw SimError("connect: unknown node id");
  }
  if (a_port == 0 || b_port == 0) {
    throw SimError("connect: port 0 is reserved");
  }
  if (latency < 0) {
    throw SimError("connect: negative latency");
  }
  const auto key_a = port_key(a, a_port);
  const auto key_b = port_key(b, b_port);
  if (links_.contains(key_a) || links_.contains(key_b)) {
    throw SimError("connect: port already wired");
  }
  links_[key_a] = LinkEnd{b, b_port, latency, bandwidth_bps};
  links_[key_b] = LinkEnd{a, a_port, latency, bandwidth_bps};
}

void Simulator::send(NodeId from, PortId port, net::Packet packet) {
  const auto it = links_.find(port_key(from, port));
  if (it == links_.end()) {
    ++stats_.packets_dropped_no_link;
    IDXX_LOG(kDebug, "sim") << nodes_[from]->name() << " port " << port
                            << ": send on unwired port dropped";
    return;
  }
  const LinkEnd link = it->second;
  // Serialization delay: wire size / bandwidth.
  SimTime delay = link.latency;
  if (link.bandwidth_bps > 0) {
    const std::uint64_t wire_bits =
        (net::EthernetHeader::kSize + net::Ipv4Header::kSize +
         packet.payload.size() + 20 /* transport approx */) * 8;
    delay += static_cast<SimTime>(wire_bits * static_cast<std::uint64_t>(kSecond) /
                                  link.bandwidth_bps);
  }
  schedule_after(delay, [this, from, port, link,
                         packet = std::move(packet)]() mutable {
    ++stats_.packets_delivered;
    if (tracer_) {
      tracer_(now_, from, port, link.peer, link.peer_port, packet);
    }
    nodes_[link.peer]->on_packet(packet, link.peer_port);
  });
}

void Simulator::schedule_at(SimTime when, std::function<void()> callback) {
  if (when < now_) {
    throw SimError("schedule_at: time in the past");
  }
  queue_.push(Event{when, next_sequence_++, std::move(callback)});
}

void Simulator::schedule_after(SimTime delay, std::function<void()> callback) {
  schedule_at(now_ + delay, std::move(callback));
}

std::uint64_t Simulator::run(SimTime deadline) {
  std::uint64_t executed = 0;
  while (!queue_.empty()) {
    if (deadline >= 0 && queue_.top().when > deadline) break;
    // Copy out before pop; priority_queue::top is const.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.when;
    event.action();
    ++executed;
    ++stats_.events_executed;
  }
  if (deadline >= 0 && now_ < deadline && queue_.empty()) {
    now_ = deadline;
  }
  return executed;
}

std::uint64_t Simulator::run_events(std::uint64_t max_events) {
  std::uint64_t executed = 0;
  while (!queue_.empty() && executed < max_events) {
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.when;
    event.action();
    ++executed;
    ++stats_.events_executed;
  }
  return executed;
}

Node& Simulator::node(NodeId id) {
  if (id >= nodes_.size()) throw SimError("node: unknown id");
  return *nodes_[id];
}

const Node& Simulator::node(NodeId id) const {
  if (id >= nodes_.size()) throw SimError("node: unknown id");
  return *nodes_[id];
}

const LinkEnd* Simulator::link_at(NodeId node, PortId port) const noexcept {
  const auto it = links_.find(port_key(node, port));
  return it == links_.end() ? nullptr : &it->second;
}

}  // namespace identxx::sim
