#pragma once

// Deterministic discrete-event network simulator.
//
// This is the substrate standing in for the physical OpenFlow testbed the
// paper assumes (see DESIGN.md, substitution table).  It provides:
//   * a virtual clock in nanoseconds,
//   * an event queue with stable FIFO ordering for simultaneous events,
//   * nodes (hosts, switches, controllers) connected by ports over
//     latency-modelled links,
//   * packet delivery with per-link latency and serialization delay.
//
// Determinism contract: given the same initial configuration and inputs,
// a run produces the identical event order.  Ties in time are broken by
// insertion sequence number.
//
// Multi-queue core (sharded admission domains, DESIGN.md §10): the event
// queue is split into lanes — lane 0 (kGlobalLane) carries every node /
// packet / control-channel event, and one extra lane per admission domain
// carries that shard's decision work.  Execution proceeds in virtual-clock
// epochs ("waves"): all events at the earliest pending timestamp run
// together — the global lane first, serially, then the shard lanes, which
// touch only shard-local state and may therefore run in parallel on a
// WorkerPool.  Events scheduled during the parallel phase are staged per
// lane and merged at the epoch barrier in lane order, so the resulting
// event sequence is bit-identical whatever the worker count (and, for
// single-lane configurations, identical to the historical single-queue
// order).

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"
#include "sim/schedule.hpp"
#include "util/error.hpp"

namespace identxx::sim {

class WorkerPool;

/// Simulated time in nanoseconds since simulation start.
using SimTime = std::int64_t;

constexpr SimTime kMicrosecond = 1'000;
constexpr SimTime kMillisecond = 1'000'000;
constexpr SimTime kSecond = 1'000'000'000;

using NodeId = std::uint32_t;
constexpr NodeId kInvalidNode = ~NodeId{0};

/// Event lane.  Lane 0 is the global lane (all node/packet events); lanes
/// 1..N are shard lanes created by configure_shard_lanes().
using LaneId = std::uint32_t;
constexpr LaneId kGlobalLane = 0;

/// Port number on a node.  Port numbering is per-node, starting at 1 to
/// match OpenFlow conventions (0 is reserved).
using PortId = std::uint16_t;

class Simulator;

/// Anything attached to the simulated network: host, switch, controller.
class Node {
 public:
  virtual ~Node() = default;

  /// Called by the simulator when a packet arrives on `in_port`.
  virtual void on_packet(const net::Packet& packet, PortId in_port) = 0;

  /// Human-readable name for traces.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Set by the simulator at registration.
  void attach(Simulator* simulator, NodeId id) noexcept {
    simulator_ = simulator;
    id_ = id;
  }
  [[nodiscard]] NodeId id() const noexcept { return id_; }

 protected:
  [[nodiscard]] Simulator* simulator() const noexcept { return simulator_; }

 private:
  Simulator* simulator_ = nullptr;
  NodeId id_ = kInvalidNode;
};

/// Default link capacity: 10 Gbit/s, fast enough that serialization delay
/// is negligible for the paper's control-plane experiments.
constexpr std::uint64_t kDefaultBandwidthBps = 10'000'000'000ULL;

/// One direction of a link: sending out of (node, port) reaches `peer` on
/// `peer_port` after `latency` plus serialization delay.
struct LinkEnd {
  NodeId peer = kInvalidNode;
  PortId peer_port = 0;
  SimTime latency = 10 * kMicrosecond;
  /// Bits per simulated second; 0 disables serialization delay.
  std::uint64_t bandwidth_bps = kDefaultBandwidthBps;
};

/// Serialization time of `packet` on a `bandwidth_bps` link (0 = free):
/// modelled wire size (Ethernet + IPv4 headers, payload, transport
/// approximation) over capacity.  The switch queue model and the
/// simulator's own delivery path share this so occupancy and delivery
/// times stay consistent.
[[nodiscard]] SimTime serialization_delay(const net::Packet& packet,
                                          std::uint64_t bandwidth_bps) noexcept;

/// Counters the trace/benchmark layer reads after a run.
struct SimStats {
  std::uint64_t events_executed = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t packets_dropped_no_link = 0;
};

/// The simulator owns all nodes and the event queue.
class Simulator {
 public:
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Register a node; the simulator takes ownership.  Returns its id.
  NodeId add_node(std::unique_ptr<Node> node);

  /// Connect two (node, port) pairs bidirectionally.
  /// Throws SimError if either port is already wired.
  void connect(NodeId a, PortId a_port, NodeId b, PortId b_port,
               SimTime latency = 10 * kMicrosecond,
               std::uint64_t bandwidth_bps = kDefaultBandwidthBps);

  /// Send `packet` out of (from, port).  Delivery is scheduled after the
  /// link latency + serialization delay; silently counted as dropped when
  /// the port is unwired (mirrors pulling a cable).
  void send(NodeId from, PortId port, net::Packet packet);

  /// Schedule an arbitrary callback at absolute time `when` (>= now).
  /// The event lands on the lane of the currently-executing event (the
  /// global lane outside event execution), so follow-up work stays in its
  /// shard by default.
  void schedule_at(SimTime when, std::function<void()> callback);

  /// Schedule a callback `delay` after now (same lane inheritance).
  void schedule_after(SimTime delay, std::function<void()> callback);

  /// Schedule onto an explicit lane — the cross-lane message primitive:
  /// shard work dispatches with schedule_on(shard_lane, ...) and commits
  /// its shared-state effects back with schedule_on(kGlobalLane, ...).
  void schedule_on(LaneId lane, SimTime when, std::function<void()> callback);

  // ---- sharded execution ----------------------------------------------------

  /// Create `shard_lanes` additional lanes (ids 1..shard_lanes).  The
  /// lane count only grows; existing events keep their lanes.  Safe to
  /// call between runs.
  void configure_shard_lanes(std::uint32_t shard_lanes);
  [[nodiscard]] std::uint32_t lane_count() const noexcept {
    return static_cast<std::uint32_t>(lanes_.size());
  }

  /// Real parallelism for the shard-lane phase of each wave (1 = serial).
  /// Determinism does not depend on this value.  Only grows.
  void set_workers(std::uint32_t workers);
  [[nodiscard]] std::uint32_t workers() const noexcept { return workers_; }

  // ---- schedule exploration (DESIGN.md §13) ---------------------------------

  /// Attach a ScheduleController: every shard-lane phase then runs
  /// serially in the per-wave order the controller dictates, with newly
  /// scheduled events staged and merged canonically (ascending lane
  /// order) at the wave barrier.  An identity controller reproduces the
  /// canonical run bit-for-bit.  Pass nullptr to detach.  Not owned.
  void set_schedule_controller(ScheduleController* controller) noexcept {
    schedule_controller_ = controller;
  }
  [[nodiscard]] ScheduleController* schedule_controller() const noexcept {
    return schedule_controller_;
  }

  /// Injected determinism mutation (checker self-test, DESIGN.md §13):
  /// merge staged cross-lane events in modeled *arrival* (execution)
  /// order instead of canonical ascending lane order.  Only observable
  /// under a ScheduleController that permutes lane order.
  void set_fault_merge_arrival_order(bool on) noexcept {
    fault_merge_arrival_order_ = on;
  }

  /// Run until the event queue drains or `deadline` is reached.
  /// Returns the number of events executed.
  std::uint64_t run(SimTime deadline = -1);

  /// Execute at most `max_events` pending events.
  std::uint64_t run_events(std::uint64_t max_events);

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] bool idle() const noexcept;
  [[nodiscard]] const SimStats& stats() const noexcept { return stats_; }

  [[nodiscard]] Node& node(NodeId id);
  [[nodiscard]] const Node& node(NodeId id) const;
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }

  /// The link wired to (node, port), if any.
  [[nodiscard]] const LinkEnd* link_at(NodeId node, PortId port) const noexcept;

  /// Observe every packet delivery (debugging / trace capture).  Called at
  /// delivery time, before the receiving node's on_packet.
  using DeliveryTracer =
      std::function<void(SimTime when, NodeId from, PortId from_port,
                         NodeId to, PortId to_port, const net::Packet&)>;
  void set_delivery_tracer(DeliveryTracer tracer) {
    tracer_ = std::move(tracer);
  }

  /// An event scheduled from inside the parallel shard phase, buffered
  /// until the epoch barrier merges it deterministically.  `origin` is
  /// the shard lane the event is attributed to for schedule-exploration
  /// footprints (kGlobalLane for work with no shard ancestry).
  struct StagedEvent {
    LaneId lane;
    SimTime when;
    LaneId origin;
    std::function<void()> action;
  };

 private:
  struct Event {
    SimTime when;
    std::uint64_t sequence;  // FIFO tiebreaker
    LaneId origin;           // shard attribution for schedule exploration
    std::function<void()> action;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.sequence > b.sequence;
    }
  };
  struct Lane {
    std::priority_queue<Event, std::vector<Event>, EventLater> queue;
  };

  /// Earliest pending timestamp across lanes, or -1 when idle.
  [[nodiscard]] SimTime next_event_time() const noexcept;
  /// Execute every event at exactly `t` (one virtual-clock epoch).
  std::uint64_t run_wave(SimTime t);
  void push_event(LaneId lane, SimTime when, LaneId origin,
                  std::function<void()> action);
  void ensure_pool();

  std::vector<std::unique_ptr<Node>> nodes_;
  std::unordered_map<std::uint64_t, LinkEnd> links_;  // key: node<<16 | port
  std::vector<Lane> lanes_;
  SimTime now_ = 0;
  std::uint64_t next_sequence_ = 0;
  std::uint32_t workers_ = 1;
  std::unique_ptr<WorkerPool> pool_;
  ScheduleController* schedule_controller_ = nullptr;
  bool fault_merge_arrival_order_ = false;
  SimStats stats_;
  DeliveryTracer tracer_;

  [[nodiscard]] static std::uint64_t port_key(NodeId node, PortId port) noexcept {
    return (static_cast<std::uint64_t>(node) << 16) | port;
  }
};

}  // namespace identxx::sim
