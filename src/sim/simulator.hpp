#pragma once

// Deterministic discrete-event network simulator.
//
// This is the substrate standing in for the physical OpenFlow testbed the
// paper assumes (see DESIGN.md, substitution table).  It provides:
//   * a virtual clock in nanoseconds,
//   * an event queue with stable FIFO ordering for simultaneous events,
//   * nodes (hosts, switches, controllers) connected by ports over
//     latency-modelled links,
//   * packet delivery with per-link latency and serialization delay.
//
// Determinism contract: given the same initial configuration and inputs,
// a run produces the identical event order.  Ties in time are broken by
// insertion sequence number.

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"
#include "util/error.hpp"

namespace identxx::sim {

/// Simulated time in nanoseconds since simulation start.
using SimTime = std::int64_t;

constexpr SimTime kMicrosecond = 1'000;
constexpr SimTime kMillisecond = 1'000'000;
constexpr SimTime kSecond = 1'000'000'000;

using NodeId = std::uint32_t;
constexpr NodeId kInvalidNode = ~NodeId{0};

/// Port number on a node.  Port numbering is per-node, starting at 1 to
/// match OpenFlow conventions (0 is reserved).
using PortId = std::uint16_t;

class Simulator;

/// Anything attached to the simulated network: host, switch, controller.
class Node {
 public:
  virtual ~Node() = default;

  /// Called by the simulator when a packet arrives on `in_port`.
  virtual void on_packet(const net::Packet& packet, PortId in_port) = 0;

  /// Human-readable name for traces.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Set by the simulator at registration.
  void attach(Simulator* simulator, NodeId id) noexcept {
    simulator_ = simulator;
    id_ = id;
  }
  [[nodiscard]] NodeId id() const noexcept { return id_; }

 protected:
  [[nodiscard]] Simulator* simulator() const noexcept { return simulator_; }

 private:
  Simulator* simulator_ = nullptr;
  NodeId id_ = kInvalidNode;
};

/// One direction of a link: sending out of (node, port) reaches `peer` on
/// `peer_port` after `latency` plus serialization delay.
struct LinkEnd {
  NodeId peer = kInvalidNode;
  PortId peer_port = 0;
  SimTime latency = 10 * kMicrosecond;
  /// Bits per simulated second; 0 disables serialization delay.
  std::uint64_t bandwidth_bps = 10'000'000'000ULL;
};

/// Counters the trace/benchmark layer reads after a run.
struct SimStats {
  std::uint64_t events_executed = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t packets_dropped_no_link = 0;
};

/// The simulator owns all nodes and the event queue.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Register a node; the simulator takes ownership.  Returns its id.
  NodeId add_node(std::unique_ptr<Node> node);

  /// Connect two (node, port) pairs bidirectionally.
  /// Throws SimError if either port is already wired.
  void connect(NodeId a, PortId a_port, NodeId b, PortId b_port,
               SimTime latency = 10 * kMicrosecond,
               std::uint64_t bandwidth_bps = 10'000'000'000ULL);

  /// Send `packet` out of (from, port).  Delivery is scheduled after the
  /// link latency + serialization delay; silently counted as dropped when
  /// the port is unwired (mirrors pulling a cable).
  void send(NodeId from, PortId port, net::Packet packet);

  /// Schedule an arbitrary callback at absolute time `when` (>= now).
  void schedule_at(SimTime when, std::function<void()> callback);

  /// Schedule a callback `delay` after now.
  void schedule_after(SimTime delay, std::function<void()> callback);

  /// Run until the event queue drains or `deadline` is reached.
  /// Returns the number of events executed.
  std::uint64_t run(SimTime deadline = -1);

  /// Execute at most `max_events` pending events.
  std::uint64_t run_events(std::uint64_t max_events);

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] bool idle() const noexcept { return queue_.empty(); }
  [[nodiscard]] const SimStats& stats() const noexcept { return stats_; }

  [[nodiscard]] Node& node(NodeId id);
  [[nodiscard]] const Node& node(NodeId id) const;
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }

  /// The link wired to (node, port), if any.
  [[nodiscard]] const LinkEnd* link_at(NodeId node, PortId port) const noexcept;

  /// Observe every packet delivery (debugging / trace capture).  Called at
  /// delivery time, before the receiving node's on_packet.
  using DeliveryTracer =
      std::function<void(SimTime when, NodeId from, PortId from_port,
                         NodeId to, PortId to_port, const net::Packet&)>;
  void set_delivery_tracer(DeliveryTracer tracer) {
    tracer_ = std::move(tracer);
  }

 private:
  struct Event {
    SimTime when;
    std::uint64_t sequence;  // FIFO tiebreaker
    std::function<void()> action;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.sequence > b.sequence;
    }
  };

  std::vector<std::unique_ptr<Node>> nodes_;
  std::unordered_map<std::uint64_t, LinkEnd> links_;  // key: node<<16 | port
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  SimTime now_ = 0;
  std::uint64_t next_sequence_ = 0;
  SimStats stats_;
  DeliveryTracer tracer_;

  [[nodiscard]] static std::uint64_t port_key(NodeId node, PortId port) noexcept {
    return (static_cast<std::uint64_t>(node) << 16) | port;
  }
};

}  // namespace identxx::sim
